(* Tests for the BlobSeer versioning store: segment trees, data providers,
   the client API (write/read/clone/versioning), shadowing, replication and
   failure behaviour. *)

open Simcore
open Netsim
open Storage
open Blobseer

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

(* ------------------------------------------------------------------ *)
(* Segment_tree (pure data structure) *)

let leaves_list tree =
  Segment_tree.fold_set (fun i v acc -> (i, v) :: acc) tree [] |> List.rev

let test_tree_empty () =
  let t = Segment_tree.create ~chunks:10 in
  Alcotest.(check int) "chunks" 10 (Segment_tree.chunks t);
  Alcotest.(check (option int)) "empty leaf" None (Segment_tree.get t 3);
  Alcotest.(check int) "no nodes" 0 (Segment_tree.live_nodes t);
  Alcotest.(check (list (pair int int))) "fold empty" [] (leaves_list t)

let test_tree_set_get () =
  let t = Segment_tree.create ~chunks:8 in
  let t1, created = Segment_tree.set_range t ~start:2 [| Some 20; Some 30 |] in
  Alcotest.(check bool) "nodes created" true (created > 0);
  Alcotest.(check (option int)) "set" (Some 20) (Segment_tree.get t1 2);
  Alcotest.(check (option int)) "set" (Some 30) (Segment_tree.get t1 3);
  Alcotest.(check (option int)) "unset" None (Segment_tree.get t1 0);
  Alcotest.(check (option int)) "original untouched" None (Segment_tree.get t 2)

let test_tree_non_pow2 () =
  let t = Segment_tree.create ~chunks:5 in
  let t1, _ = Segment_tree.set_range t ~start:4 [| Some 1 |] in
  Alcotest.(check (option int)) "last chunk" (Some 1) (Segment_tree.get t1 4);
  Alcotest.check_raises "out of range" (Invalid_argument "Segment_tree.get: index out of range")
    (fun () -> ignore (Segment_tree.get t1 5))

let test_tree_shadowing_shares_structure () =
  let t = Segment_tree.create ~chunks:1024 in
  let full = Array.init 1024 (fun i -> Some i) in
  let v1, _ = Segment_tree.set_range t ~start:0 full in
  let v2, created = Segment_tree.set_range v1 ~start:17 [| Some (-1) |] in
  (* Updating one leaf touches only the path to the root. *)
  Alcotest.(check bool) "logarithmic update" true (created <= 11 + 1);
  let shared = Segment_tree.shared_nodes v1 v2 in
  let v1_nodes = Segment_tree.live_nodes v1 in
  Alcotest.(check bool)
    (Fmt.str "massive sharing (%d shared of %d)" shared v1_nodes)
    true
    (shared > v1_nodes - 15);
  Alcotest.(check (option int)) "old version intact" (Some 17) (Segment_tree.get v1 17);
  Alcotest.(check (option int)) "new version updated" (Some (-1)) (Segment_tree.get v2 17)

let test_tree_unset_leaf () =
  let t = Segment_tree.create ~chunks:4 in
  let t1, _ = Segment_tree.set_range t ~start:0 [| Some 1; Some 2 |] in
  let t2, _ = Segment_tree.set_range t1 ~start:1 [| None |] in
  Alcotest.(check (option int)) "punched" None (Segment_tree.get t2 1);
  Alcotest.(check (option int)) "neighbour kept" (Some 1) (Segment_tree.get t2 0)

let test_tree_noop_set_shares_all () =
  let t = Segment_tree.create ~chunks:16 in
  let t1, created = Segment_tree.set_range t ~start:0 [||] in
  Alcotest.(check int) "no nodes" 0 created;
  Alcotest.(check bool) "same root" true (Segment_tree.shared_nodes t t1 = 0)

let test_tree_diff_leaves () =
  let t = Segment_tree.create ~chunks:64 in
  let v1, _ = Segment_tree.set_range t ~start:0 (Array.init 64 (fun i -> Some i)) in
  let v2, _ = Segment_tree.set_range v1 ~start:10 [| Some 100; Some 11; Some 120 |] in
  Alcotest.(check (list (triple int (option int) (option int))))
    "changed leaves"
    [ (10, Some 10, Some 100); (12, Some 12, Some 120) ]
    (Segment_tree.diff_leaves v1 v2)

let test_tree_get_range () =
  let t = Segment_tree.create ~chunks:8 in
  let t1, _ = Segment_tree.set_range t ~start:2 [| Some 2; Some 3 |] in
  Alcotest.(check (array (option int)))
    "range" [| None; Some 2; Some 3; None |]
    (Segment_tree.get_range t1 ~start:1 ~len:4)

let test_tree_zero_length_write () =
  let t = Segment_tree.create ~chunks:6 in
  let t1, _ = Segment_tree.set_range t ~start:1 [| Some 10 |] in
  (* Zero-length writes are no-ops at any in-range start, including one
     past the last leaf, and allocate nothing. *)
  List.iter
    (fun start ->
      let t2, created = Segment_tree.set_range t1 ~start [||] in
      Alcotest.(check int) (Fmt.str "no nodes at %d" start) 0 created;
      Alcotest.(check (list (pair int int)))
        (Fmt.str "identical leaves at %d" start)
        (leaves_list t1) (leaves_list t2))
    [ 0; 3; 6 ];
  Alcotest.check_raises "zero-length write past EOF rejected"
    (Invalid_argument "Segment_tree.set_range") (fun () ->
      ignore (Segment_tree.set_range t1 ~start:7 [||]))

let test_tree_write_straddles_subtree_boundary () =
  (* chunks = 8: the root splits at leaf 4; a write covering [3..6) crosses
     it and must rebuild paths in both halves while leaving the outer
     leaves shared with the old version. *)
  let t = Segment_tree.create ~chunks:8 in
  let v1, _ = Segment_tree.set_range t ~start:0 (Array.init 8 (fun i -> Some i)) in
  let v2, _ = Segment_tree.set_range v1 ~start:3 [| Some 30; Some 40; Some 50 |] in
  Alcotest.(check (array (option int)))
    "straddling write applied"
    [| Some 0; Some 1; Some 2; Some 30; Some 40; Some 50; Some 6; Some 7 |]
    (Segment_tree.get_range v2 ~start:0 ~len:8);
  Alcotest.(check (array (option int)))
    "old version immutable"
    (Array.init 8 (fun i -> Some i))
    (Segment_tree.get_range v1 ~start:0 ~len:8);
  Alcotest.(check (list (triple int (option int) (option int))))
    "diff sees exactly the straddling range"
    [ (3, Some 3, Some 30); (4, Some 4, Some 40); (5, Some 5, Some 50) ]
    (Segment_tree.diff_leaves v1 v2);
  Alcotest.(check bool) "untouched subtrees shared" true
    (Segment_tree.shared_nodes v1 v2 > 0)

let test_tree_lookup_past_eof () =
  (* A non-power-of-two tree pads its space internally; lookups must still
     be bounded by the declared chunk count, not the padded one. *)
  let t = Segment_tree.create ~chunks:5 in
  let t1, _ = Segment_tree.set_range t ~start:0 (Array.make 5 (Some 1)) in
  Alcotest.check_raises "get past EOF" (Invalid_argument "Segment_tree.get: index out of range")
    (fun () -> ignore (Segment_tree.get t1 5));
  Alcotest.check_raises "get far past EOF"
    (Invalid_argument "Segment_tree.get: index out of range") (fun () ->
      ignore (Segment_tree.get t1 7));
  Alcotest.check_raises "get_range past EOF" (Invalid_argument "Segment_tree.get_range")
    (fun () -> ignore (Segment_tree.get_range t1 ~start:4 ~len:2));
  Alcotest.check_raises "set_range past EOF" (Invalid_argument "Segment_tree.set_range")
    (fun () -> ignore (Segment_tree.set_range t1 ~start:4 [| Some 9; Some 9 |]));
  Alcotest.(check (array (option int)))
    "empty range at EOF is fine" [||]
    (Segment_tree.get_range t1 ~start:5 ~len:0)

(* Property: a segment tree behaves like an array, and old versions are
   immutable under any sequence of range updates. *)
let prop_tree_matches_array =
  let gen =
    QCheck.Gen.(
      let* chunks = int_range 1 40 in
      let* ops =
        list_size (int_range 1 15)
          (let* start = int_range 0 (chunks - 1) in
           let* len = int_range 1 (chunks - start) in
           let* values = list_size (return len) (option (int_range 0 1000)) in
           return (start, Array.of_list values))
      in
      return (chunks, ops))
  in
  QCheck.Test.make ~name:"segment tree matches reference array; versions immutable"
    ~count:300
    (QCheck.make gen)
    (fun (chunks, ops) ->
      let reference = Array.make chunks None in
      let history = ref [] in
      let tree = ref (Segment_tree.create ~chunks) in
      List.for_all
        (fun (start, values) ->
          (* Snapshot current state for immutability checking. *)
          history := (!tree, Array.copy reference) :: !history;
          let t', _ = Segment_tree.set_range !tree ~start values in
          tree := t';
          Array.iteri (fun k v -> reference.(start + k) <- v) values;
          let current_ok =
            List.for_all
              (fun i -> Segment_tree.get !tree i = reference.(i))
              (List.init chunks Fun.id)
          in
          let old_ok =
            List.for_all
              (fun (old_tree, old_ref) ->
                List.for_all
                  (fun i -> Segment_tree.get old_tree i = old_ref.(i))
                  (List.init chunks Fun.id))
              !history
          in
          current_ok && old_ok)
        ops)

(* ------------------------------------------------------------------ *)
(* Deployment helper *)

type rig = {
  engine : Engine.t;
  net : Net.t;
  service : Client.t;
  client_host : Net.host;
}

let make_rig ?(providers = 4) ?(replication = 1) ?(stripe = 1024) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = List.init 2 (fun i -> Net.add_host net ~name:(Fmt.str "meta%d" i)) in
  let data =
    List.init providers (fun i ->
        let host = Net.add_host net ~name:(Fmt.str "node%d" i) in
        let disk = Disk.create engine ~name:(Fmt.str "disk%d" i) () in
        (host, disk))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params = { Types.default_params with stripe_size = stripe; replication } in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts ~data_providers:data ()
  in
  { engine; net; service; client_host }

let run_rig rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine ~name:"test-main" (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

let payload_str = Payload.of_string

(* ------------------------------------------------------------------ *)
(* Client *)

let test_blob_write_read_roundtrip () =
  let rig = make_rig () in
  let from = rig.client_host in
  let content = String.init 5000 (fun i -> Char.chr (i mod 256)) in
  let ok =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:100_000 in
        let v = Client.write blob ~from ~offset:0 (payload_str content) in
        let back = Client.read blob ~from ~version:v ~offset:0 ~len:5000 in
        Payload.to_string back = content)
  in
  Alcotest.(check bool) "roundtrip" true ok

let test_blob_unwritten_reads_zero () =
  let rig = make_rig () in
  let from = rig.client_host in
  let all_zero =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:10_000 in
        let p = Client.read blob ~from ~version:0 ~offset:500 ~len:100 in
        Payload.equal p (Payload.zero 100))
  in
  Alcotest.(check bool) "zeros" true all_zero

let test_blob_versions_isolated () =
  let rig = make_rig () in
  let from = rig.client_host in
  let v1_content, v2_content =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:10_000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str "aaaa") in
        let v2 = Client.write blob ~from ~offset:0 (payload_str "bbbb") in
        ( Payload.to_string (Client.read blob ~from ~version:v1 ~offset:0 ~len:4),
          Payload.to_string (Client.read blob ~from ~version:v2 ~offset:0 ~len:4) ))
  in
  Alcotest.(check string) "v1 immutable" "aaaa" v1_content;
  Alcotest.(check string) "v2 current" "bbbb" v2_content

let test_blob_partial_stripe_rmw () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let result =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let base = String.make 300 'x' in
        let v1 = Client.write blob ~from ~offset:0 (payload_str base) in
        (* Overwrite 50 bytes spanning a stripe boundary. *)
        let v2 = Client.write blob ~from ~offset:75 (payload_str (String.make 50 'y')) in
        ignore v1;
        Payload.to_string (Client.read blob ~from ~version:v2 ~offset:0 ~len:300))
  in
  let expected = String.make 75 'x' ^ String.make 50 'y' ^ String.make 175 'x' in
  Alcotest.(check string) "spliced" expected result

let test_blob_write_unaligned_offset () =
  let rig = make_rig ~stripe:64 () in
  let from = rig.client_host in
  let result =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:10 (payload_str "hello") in
        Payload.to_string (Client.read blob ~from ~version:v ~offset:8 ~len:9))
  in
  Alcotest.(check string) "zero-padded around" "\000\000hello\000\000" result

let test_blob_bounds_checked () =
  let rig = make_rig () in
  let from = rig.client_host in
  let raised =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:100 in
        try
          ignore (Client.write blob ~from ~offset:90 (payload_str (String.make 20 'z')));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "write beyond capacity rejected" true raised

let test_blob_clone_shares_then_diverges () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let original, cloned, original_after =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 200 'a')) in
        let fork = Client.clone blob ~from ~version:v1 in
        let fv = Client.write fork ~from ~offset:0 (payload_str (String.make 100 'b')) in
        ( Payload.to_string (Client.read blob ~from ~version:v1 ~offset:0 ~len:200),
          Payload.to_string (Client.read fork ~from ~version:fv ~offset:0 ~len:200),
          Payload.to_string (Client.read blob ~from ~version:v1 ~offset:100 ~len:100) ))
  in
  Alcotest.(check string) "original" (String.make 200 'a') original;
  Alcotest.(check string) "clone diverged" (String.make 100 'b' ^ String.make 100 'a') cloned;
  Alcotest.(check string) "original unaffected" (String.make 100 'a') original_after

let test_blob_clone_is_zero_copy () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let before, after =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 500 'a')) in
        let before = Client.repository_bytes rig.service in
        let _fork = Client.clone blob ~from ~version:v1 in
        (before, Client.repository_bytes rig.service))
  in
  Alcotest.(check int) "no data copied" before after

let test_blob_incremental_storage () =
  (* Writing 1 chunk on top of a 10-chunk blob stores 1 extra chunk, not
     10 — the shadowing property at the storage level. *)
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let after_base, after_update, distinct =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        (* Per-chunk-distinct content: identical chunks would dedup into
           one stored copy, which is not what this test measures. *)
        let _ =
          Client.write blob ~from ~offset:0
            (payload_str (String.init 1000 (fun i -> Char.chr (i mod 251))))
        in
        let after_base = Client.repository_bytes rig.service in
        let _ = Client.write blob ~from ~offset:300 (payload_str (String.make 100 'b')) in
        (after_base, Client.repository_bytes rig.service, Client.distinct_bytes blob))
  in
  Alcotest.(check int) "base" 1000 after_base;
  Alcotest.(check int) "one chunk added" 1100 after_update;
  Alcotest.(check int) "distinct bytes" 1100 distinct

let test_blob_version_bytes () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let v1_bytes, v2_bytes =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 300 'a')) in
        let v2 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'b')) in
        (Client.version_bytes blob ~version:v1, Client.version_bytes blob ~version:v2))
  in
  Alcotest.(check int) "v1 references 3 chunks" 300 v1_bytes;
  Alcotest.(check int) "v2 references 3 chunks too" 300 v2_bytes

let test_blob_replication_survives_provider_loss () =
  let rig = make_rig ~providers:4 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  let recovered =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str (String.make 400 'r')) in
        (* Kill one provider; every chunk still has a replica elsewhere. *)
        Data_provider.fail (Client.data_provider rig.service 0);
        Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:400))
  in
  Alcotest.(check string) "readable after failure" (String.make 400 'r') recovered

let test_blob_replication3_survives_two_losses () =
  let rig = make_rig ~providers:4 ~replication:3 ~stripe:100 () in
  let from = rig.client_host in
  let recovered =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str (String.make 400 's')) in
        (* Two of four providers fail-stop; the third replica of every
           chunk still answers, through as many failover rounds as the
           replica order demands. *)
        Data_provider.fail (Client.data_provider rig.service 0);
        Data_provider.fail (Client.data_provider rig.service 1);
        Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:400))
  in
  Alcotest.(check string) "readable after two failures" (String.make 400 's') recovered

let test_provider_transient_disk_retried () =
  (* Transient I/O errors on a provider's disk are absorbed by the
     provider's bounded-retry discipline — no replica needed. *)
  let rig = make_rig ~providers:2 ~replication:1 ~stripe:100 () in
  let from = rig.client_host in
  let content = String.make 150 't' in
  let back, armed =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str content) in
        Array.iter
          (fun p -> Disk.inject_transient (Data_provider.disk p) ~ops:1)
          (Client.data_providers rig.service);
        let back = Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:150) in
        ( back,
          Array.fold_left
            (fun acc p -> acc + Disk.armed_faults (Data_provider.disk p))
            0
            (Client.data_providers rig.service) ))
  in
  Alcotest.(check string) "read through transient faults" content back;
  Alcotest.(check int) "faults consumed by retries" 0 armed

let test_blob_unreplicated_loss_raises () =
  let rig = make_rig ~providers:2 ~replication:1 ~stripe:100 () in
  let from = rig.client_host in
  let raised =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str (String.make 400 'r')) in
        Data_provider.fail (Client.data_provider rig.service 0);
        Data_provider.fail (Client.data_provider rig.service 1);
        try
          ignore (Client.read blob ~from ~version:v ~offset:0 ~len:400);
          false
        with Types.Provider_down _ -> true)
  in
  Alcotest.(check bool) "provider_down" true raised

let test_blob_concurrent_writers_merge () =
  (* Two clients write disjoint ranges concurrently from the same base
     version; both updates survive in the final version. *)
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let final =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let base = Client.write blob ~from ~offset:0 (payload_str (String.make 400 '.')) in
        Engine.all rig.engine
          [
            (fun () ->
              ignore (Client.write blob ~from ~base ~offset:0 (payload_str (String.make 100 'A'))));
            (fun () ->
              ignore
                (Client.write blob ~from ~base ~offset:200 (payload_str (String.make 100 'B'))));
          ];
        let latest = Client.latest_version blob ~from in
        Payload.to_string (Client.read blob ~from ~version:latest ~offset:0 ~len:400))
  in
  Alcotest.(check string) "both writes survive"
    (String.make 100 'A' ^ String.make 100 '.' ^ String.make 100 'B' ^ String.make 100 '.')
    final

let test_blob_striping_spreads_load () =
  let rig = make_rig ~providers:4 ~stripe:100 () in
  let from = rig.client_host in
  let counts =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:10_000 in
        (* Per-chunk-distinct content, so every chunk is physically placed
           (identical chunks would dedup into one). *)
        let _ =
          Client.write blob ~from ~offset:0
            (payload_str (String.init 8000 (fun i -> Char.chr (i mod 251))))
        in
        Array.to_list (Array.map Data_provider.chunk_count (Client.data_providers rig.service)))
  in
  Alcotest.(check (list int)) "even spread" [ 20; 20; 20; 20 ] counts

let test_blob_write_takes_simulated_time () =
  let rig = make_rig ~stripe:(256 * Size.kib) () in
  let from = rig.client_host in
  let elapsed =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:(Size.mib_n 64) in
        let t0 = Engine.now rig.engine in
        let _ =
          Client.write blob ~from ~offset:0 (Payload.pattern ~seed:1L (Size.mib_n 16))
        in
        Engine.now rig.engine -. t0)
  in
  (* 16 MiB over 4 provider disks at 55 MB/s: at least the disk time of the
     most loaded provider (~4 MiB / 55 MBps ~ 0.07 s), at most a couple of
     seconds. *)
  Alcotest.(check bool) (Fmt.str "plausible duration %.3fs" elapsed) true
    (elapsed > 0.05 && elapsed < 3.0)

let test_open_blob_by_id () =
  let rig = make_rig () in
  let from = rig.client_host in
  let same =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str "persistent") in
        let reopened = Client.open_blob rig.service ~from ~id:(Client.blob_id blob) in
        Payload.to_string (Client.read reopened ~from ~version:v ~offset:0 ~len:10))
  in
  Alcotest.(check string) "reopened" "persistent" same

(* Property: arbitrary write sequences against a reference byte array. *)
let prop_blob_matches_reference =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (let* offset = int_range 0 990 in
         let* len = int_range 1 (1000 - offset) in
         let* ch = char in
         return (offset, len, ch)))
  in
  QCheck.Test.make ~name:"blob: random writes match reference array" ~count:30
    (QCheck.make gen)
    (fun ops ->
      let rig = make_rig ~stripe:64 () in
      let from = rig.client_host in
      run_rig rig (fun () ->
          let blob = Client.create_blob rig.service ~from ~capacity:1000 in
          let reference = Bytes.make 1000 '\000' in
          List.iter
            (fun (offset, len, ch) ->
              Bytes.fill reference offset len ch;
              ignore (Client.write blob ~from ~offset (payload_str (String.make len ch))))
            ops;
          let latest = Client.latest_version blob ~from in
          let back = Client.read blob ~from ~version:latest ~offset:0 ~len:1000 in
          Payload.to_string back = Bytes.to_string reference))

(* ------------------------------------------------------------------ *)
(* Replica placement: failure domains *)

(* A rig where several providers share each physical host — the situation
   in which naive round-robin would happily co-locate two replicas of the
   same chunk. *)
let make_colocated_rig ?(hosts = 2) ?(providers_per_host = 2) ?(replication = 2)
    ?(allow_degraded = true) ?(stripe = 100) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = [ Net.add_host net ~name:"meta0" ] in
  let data =
    List.concat
      (List.init hosts (fun h ->
           let host = Net.add_host net ~name:(Fmt.str "machine%d" h) in
           List.init providers_per_host (fun k ->
               (host, Disk.create engine ~name:(Fmt.str "disk%d.%d" h k) ()))))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params =
    {
      Types.default_params with
      stripe_size = stripe;
      replication;
      allow_degraded_writes = allow_degraded;
    }
  in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts ~data_providers:data ()
  in
  { engine; net; service; client_host }

let replica_hosts service (desc : Types.chunk_desc) =
  List.map
    (fun (r : Types.replica) ->
      Net.host_id (Data_provider.host (Client.data_provider service r.provider)))
    desc.replicas

let live_descs service blob =
  let tree = Client.tree blob ~version:(Version_manager.peek_latest
                                          (Client.version_manager service)
                                          (Client.blob_id blob)) in
  Segment_tree.fold_set (fun i d acc -> (i, d) :: acc) tree [] |> List.rev

let test_placement_never_colocates_replicas () =
  (* 2 machines x 2 providers, replication 2: every chunk must land on both
     machines, never twice on one — even though 4 providers are live. *)
  let rig = make_colocated_rig () in
  let from = rig.client_host in
  let descs =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let _ = Client.write blob ~from ~offset:0 (payload_str (String.make 1000 'p')) in
        live_descs rig.service blob)
  in
  Alcotest.(check int) "ten chunks" 10 (List.length descs);
  List.iter
    (fun (i, desc) ->
      let hosts = replica_hosts rig.service desc in
      Alcotest.(check int) (Fmt.str "chunk %d has 2 replicas" i) 2 (List.length hosts);
      Alcotest.(check bool)
        (Fmt.str "chunk %d replicas on distinct machines" i)
        true
        (List.length (List.sort_uniq compare hosts) = 2))
    descs

let test_placement_degraded_when_hosts_short () =
  (* Both providers of machine 1 fail: only one failure domain remains, so
     replication-2 writes place a single copy and are counted degraded. *)
  let rig = make_colocated_rig () in
  let from = rig.client_host in
  let descs, degraded =
    run_rig rig (fun () ->
        Data_provider.fail (Client.data_provider rig.service 2);
        Data_provider.fail (Client.data_provider rig.service 3);
        let blob = Client.create_blob rig.service ~from ~capacity:500 in
        (* Distinct chunks: each one must go through placement (identical
           chunks would dedup after the first degraded allocation). *)
        let _ =
          Client.write blob ~from ~offset:0
            (payload_str (String.init 500 (fun i -> Char.chr (i mod 251))))
        in
        (live_descs rig.service blob,
         Provider_manager.degraded_allocations (Client.provider_manager rig.service)))
  in
  Alcotest.(check bool) "degraded allocations counted" true (degraded >= 5);
  List.iter
    (fun (i, (desc : Types.chunk_desc)) ->
      Alcotest.(check int) (Fmt.str "chunk %d single copy" i) 1 (List.length desc.replicas))
    descs

let test_placement_strict_raises_when_hosts_short () =
  let rig = make_colocated_rig ~allow_degraded:false () in
  let from = rig.client_host in
  let raised =
    run_rig rig (fun () ->
        Data_provider.fail (Client.data_provider rig.service 2);
        Data_provider.fail (Client.data_provider rig.service 3);
        let blob = Client.create_blob rig.service ~from ~capacity:500 in
        try
          ignore (Client.write blob ~from ~offset:0 (payload_str (String.make 500 'x')));
          false
        with Types.Provider_down _ -> true)
  in
  Alcotest.(check bool) "strict placement refuses degraded write" true raised

(* ------------------------------------------------------------------ *)
(* End-to-end chunk integrity *)

let first_desc service blob = snd (List.hd (live_descs service blob))

let test_read_checksum_failover () =
  let rig = make_rig ~providers:3 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  let content = String.make 300 'i' in
  let back, failures =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str content) in
        (* Silently corrupt the primary copy of the first chunk: the read
           must detect the digest mismatch and fail over to the replica. *)
        let desc = first_desc rig.service blob in
        let r = List.hd desc.Types.replicas in
        Alcotest.(check bool) "corruption landed" true
          (Data_provider.corrupt_chunk
             (Client.data_provider rig.service r.Types.provider)
             ~salt:7 r.Types.chunk);
        let back = Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:300) in
        (back, Client.integrity_failures rig.service))
  in
  Alcotest.(check string) "payload intact despite corrupt primary" content back;
  Alcotest.(check bool) "failover counted" true (failures >= 1)

let test_read_all_copies_corrupt_raises () =
  let rig = make_rig ~providers:3 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  let raised =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'c')) in
        let desc = first_desc rig.service blob in
        List.iter
          (fun (r : Types.replica) ->
            ignore
              (Data_provider.corrupt_chunk
                 (Client.data_provider rig.service r.provider)
                 ~salt:9 r.chunk))
          desc.Types.replicas;
        (* Every copy fails verification: a corrupt replica is a failed
           replica, so the read ends in the same typed error as total
           replica loss — never silently returned garbage. *)
        try
          ignore (Client.read blob ~from ~version:v ~offset:0 ~len:100);
          false
        with Types.Provider_down _ -> true)
  in
  Alcotest.(check bool) "typed failure, no garbage" true raised

(* ------------------------------------------------------------------ *)
(* Journaled publication: crash points and recovery *)

let test_publish_crash_before_apply_rolls_back () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let ok =
    run_rig rig (fun () ->
        let vm = Client.version_manager rig.service in
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'a')) in
        Version_manager.arm_crash vm Version_manager.Before_apply;
        let crashed =
          try
            ignore (Client.write blob ~from ~offset:0 (payload_str (String.make 100 'b')));
            false
          with Types.Service_crashed _ -> true
        in
        Alcotest.(check bool) "publish crashed" true crashed;
        Alcotest.(check bool) "service down" false (Version_manager.is_alive vm);
        Alcotest.(check int) "intent pending" 1 (Version_manager.journal_pending vm);
        Version_manager.restart vm;
        Alcotest.(check int) "journal quiescent" 0 (Version_manager.journal_pending vm);
        Alcotest.(check int) "one intent recovered" 1 (Version_manager.recovered_intents vm);
        (* Nothing half-published: latest still v1, and a fresh write gets
           the next version as if the crashed attempt never happened. *)
        Alcotest.(check int) "latest unchanged" v1 (Client.latest_version blob ~from);
        let v2 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'c')) in
        Alcotest.(check int) "dense versions" (v1 + 1) v2;
        Payload.to_string (Client.read blob ~from ~version:v2 ~offset:0 ~len:100)
        = String.make 100 'c')
  in
  Alcotest.(check bool) "retry publishes cleanly" true ok

let test_publish_crash_mid_apply_rolls_back () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let ok =
    run_rig rig (fun () ->
        let vm = Client.version_manager rig.service in
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'a')) in
        let crashed =
          Version_manager.arm_crash vm Version_manager.Mid_apply;
          try
            ignore (Client.write blob ~from ~offset:0 (payload_str (String.make 100 'b')));
            false
          with Types.Service_crashed _ -> true
        in
        Alcotest.(check bool) "publish crashed mid-apply" true crashed;
        Version_manager.restart vm;
        (* The half-inserted version was rolled back: reading the version
           after latest must fail, and the version list stays dense. *)
        Alcotest.(check int) "latest unchanged" v1 (Client.latest_version blob ~from);
        Alcotest.(check (list int))
          "no orphan version"
          (List.init (v1 + 1) Fun.id)
          (Version_manager.versions vm ~blob:(Client.blob_id blob));
        let v2 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'c')) in
        Payload.to_string (Client.read blob ~from ~version:v2 ~offset:0 ~len:100)
        = String.make 100 'c')
  in
  Alcotest.(check bool) "recovered and republished" true ok

let test_clone_crash_rolls_back () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let ok =
    run_rig rig (fun () ->
        let vm = Client.version_manager rig.service in
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'a')) in
        let blobs_before = List.length (Version_manager.blob_ids vm) in
        Version_manager.arm_crash vm Version_manager.Mid_apply;
        let crashed =
          try
            ignore (Client.clone blob ~from ~version:v1);
            false
          with Types.Service_crashed _ -> true
        in
        Alcotest.(check bool) "clone crashed" true crashed;
        Version_manager.restart vm;
        Alcotest.(check int) "no half-registered blob" blobs_before
          (List.length (Version_manager.blob_ids vm));
        (* Retried clone works and reads the snapshot back (the fork
           rebases the snapshot as its own version 0). *)
        let fork = Client.clone blob ~from ~version:v1 in
        Payload.to_string (Client.read fork ~from ~version:0 ~offset:0 ~len:100)
        = String.make 100 'a')
  in
  Alcotest.(check bool) "clone retried after recovery" true ok

let test_metadata_crash_recovery () =
  let rig = make_rig ~stripe:100 () in
  let from = rig.client_host in
  let ok =
    run_rig rig (fun () ->
        let md = Client.metadata_service rig.service in
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v1 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'a')) in
        Metadata_service.arm_crash md;
        let crashed =
          try
            ignore (Client.write blob ~from ~offset:0 (payload_str (String.make 100 'b')));
            false
          with Types.Service_crashed _ -> true
        in
        Alcotest.(check bool) "metadata commit crashed" true crashed;
        Alcotest.(check int) "intent pending" 1 (Metadata_service.journal_pending md);
        Metadata_service.recover_journal md;
        Alcotest.(check int) "journal quiescent" 0 (Metadata_service.journal_pending md);
        (* The version was never published — latest is still v1 — and the
           repository keeps serving. *)
        Alcotest.(check int) "latest unchanged" v1 (Client.latest_version blob ~from);
        let v2 = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'c')) in
        Payload.to_string (Client.read blob ~from ~version:v2 ~offset:0 ~len:100)
        = String.make 100 'c')
  in
  Alcotest.(check bool) "metadata recovered" true ok

(* ------------------------------------------------------------------ *)
(* Scrub & repair *)

let all_replicas_verify service blob =
  List.for_all
    (fun (_, (desc : Types.chunk_desc)) ->
      List.for_all
        (fun (r : Types.replica) ->
          Data_provider.verify_chunk (Client.data_provider service r.provider) r.chunk)
        desc.replicas)
    (live_descs service blob)

let test_scrubber_repairs_corrupt_replica () =
  let rig = make_rig ~providers:3 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  let content = String.make 300 's' in
  let repaired_ok =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str content) in
        let desc = first_desc rig.service blob in
        let r = List.hd desc.Types.replicas in
        ignore
          (Data_provider.corrupt_chunk
             (Client.data_provider rig.service r.Types.provider)
             ~salt:3 r.Types.chunk);
        let scrub = Scrubber.create rig.service ~home:rig.client_host () in
        Scrubber.scan scrub;
        let stats = Scrubber.stats scrub in
        Alcotest.(check int) "one repair" 1 stats.Scrubber.repairs;
        Alcotest.(check int) "repair traffic = one chunk" 100 stats.Scrubber.repair_bytes;
        Alcotest.(check int) "nothing unrepairable" 0 stats.Scrubber.unrepairable;
        Alcotest.(check bool) "version restorable" true
          (Scrubber.version_ok scrub ~blob:(Client.blob_id blob) ~version:v);
        Alcotest.(check bool) "pins released between passes" true (Scrubber.pins scrub = []);
        (* After repair every copy verifies locally and the read sees the
           original bytes without needing a failover. *)
        Alcotest.(check bool) "all replicas verify" true (all_replicas_verify rig.service blob);
        let back = Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:300) in
        Alcotest.(check int) "no failover needed" 0 (Client.integrity_failures rig.service);
        back = content)
  in
  Alcotest.(check bool) "repaired in place" true repaired_ok

let test_scrubber_re_replicates_lost_copies () =
  let rig = make_rig ~providers:4 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  let ok =
    run_rig rig (fun () ->
        let blob = Client.create_blob rig.service ~from ~capacity:1000 in
        let v = Client.write blob ~from ~offset:0 (payload_str (String.make 800 'l')) in
        (* A machine dies with its provider: every chunk it held is now
           under-replicated until the scrubber re-replicates. *)
        Data_provider.fail (Client.data_provider rig.service 0);
        let scrub = Scrubber.create rig.service ~home:rig.client_host () in
        Scrubber.scan scrub;
        let stats = Scrubber.stats scrub in
        Alcotest.(check bool) "some chunks re-replicated" true (stats.Scrubber.repairs > 0);
        (* Every descriptor now references live, distinct-host, verifying
           replicas at full replication. *)
        List.iter
          (fun (i, (desc : Types.chunk_desc)) ->
            Alcotest.(check int) (Fmt.str "chunk %d back to 2 copies" i) 2
              (List.length desc.replicas);
            let hosts = replica_hosts rig.service desc in
            Alcotest.(check bool) (Fmt.str "chunk %d distinct hosts" i) true
              (List.length (List.sort_uniq compare hosts) = 2);
            List.iter
              (fun (r : Types.replica) ->
                Alcotest.(check bool) (Fmt.str "chunk %d replica alive" i) true
                  (Data_provider.is_alive (Client.data_provider rig.service r.provider)))
              desc.replicas)
          (live_descs rig.service blob);
        Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:800)
        = String.make 800 'l')
  in
  Alcotest.(check bool) "healed to full replication" true ok

let test_scrubber_unrepairable_reported () =
  let rig = make_rig ~providers:3 ~replication:1 ~stripe:100 () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let blob = Client.create_blob rig.service ~from ~capacity:300 in
      let v = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'u')) in
      let desc = first_desc rig.service blob in
      let r = List.hd desc.Types.replicas in
      ignore
        (Data_provider.corrupt_chunk
           (Client.data_provider rig.service r.Types.provider)
           ~salt:5 r.Types.chunk);
      let scrub = Scrubber.create rig.service ~home:rig.client_host () in
      Scrubber.scan scrub;
      let stats = Scrubber.stats scrub in
      Alcotest.(check int) "unrepairable chunk counted" 1 stats.Scrubber.unrepairable;
      Alcotest.(check int) "no repair possible" 0 stats.Scrubber.repairs;
      Alcotest.(check bool) "version flagged unrestorable" false
        (Scrubber.version_ok scrub ~blob:(Client.blob_id blob) ~version:v);
      Alcotest.(check bool) "unrepairable event logged" true
        (List.exists
           (function Scrubber.Unrepairable _ -> true | _ -> false)
           (Scrubber.events scrub)))

let test_scrubber_quorum_failure_defers_repair () =
  (* Replication 3 on 3 machines with one dead: 2 good copies remain and no
     spare failure domain exists, so a quorum of 3 cannot be met — the
     chunk stays degraded and is retried, not force-published. *)
  let rig = make_rig ~providers:3 ~replication:3 ~stripe:100 () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let blob = Client.create_blob rig.service ~from ~capacity:300 in
      let v = Client.write blob ~from ~offset:0 (payload_str (String.make 100 'q')) in
      Data_provider.fail (Client.data_provider rig.service 0);
      let scrub =
        Scrubber.create rig.service ~home:rig.client_host
          ~config:{ Scrubber.default_config with Scrubber.quorum = Some 3 } ()
      in
      Scrubber.scan scrub;
      let stats = Scrubber.stats scrub in
      Alcotest.(check bool) "quorum failures counted" true (stats.Scrubber.quorum_failures > 0);
      Alcotest.(check int) "nothing published" 0 stats.Scrubber.repairs;
      Alcotest.(check bool) "version held back from rollback" false
        (Scrubber.version_ok scrub ~blob:(Client.blob_id blob) ~version:v);
      (* The surviving copies still serve reads. *)
      Alcotest.(check bool) "data still readable" true
        (Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:100)
        = String.make 100 'q'))

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "blobseer"
    [
      ( "segment_tree",
        [
          Alcotest.test_case "empty" `Quick test_tree_empty;
          Alcotest.test_case "set/get" `Quick test_tree_set_get;
          Alcotest.test_case "non-power-of-two size" `Quick test_tree_non_pow2;
          Alcotest.test_case "shadowing shares structure" `Quick
            test_tree_shadowing_shares_structure;
          Alcotest.test_case "unset leaf" `Quick test_tree_unset_leaf;
          Alcotest.test_case "noop set shares all" `Quick test_tree_noop_set_shares_all;
          Alcotest.test_case "diff leaves" `Quick test_tree_diff_leaves;
          Alcotest.test_case "get_range" `Quick test_tree_get_range;
          Alcotest.test_case "zero-length writes" `Quick test_tree_zero_length_write;
          Alcotest.test_case "write straddles subtree boundary" `Quick
            test_tree_write_straddles_subtree_boundary;
          Alcotest.test_case "lookups past EOF" `Quick test_tree_lookup_past_eof;
        ]
        @ qsuite [ prop_tree_matches_array ] );
      ( "client",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_blob_write_read_roundtrip;
          Alcotest.test_case "unwritten reads zero" `Quick test_blob_unwritten_reads_zero;
          Alcotest.test_case "versions isolated" `Quick test_blob_versions_isolated;
          Alcotest.test_case "partial stripe RMW" `Quick test_blob_partial_stripe_rmw;
          Alcotest.test_case "unaligned offset" `Quick test_blob_write_unaligned_offset;
          Alcotest.test_case "bounds checked" `Quick test_blob_bounds_checked;
          Alcotest.test_case "clone shares then diverges" `Quick
            test_blob_clone_shares_then_diverges;
          Alcotest.test_case "clone is zero-copy" `Quick test_blob_clone_is_zero_copy;
          Alcotest.test_case "incremental storage" `Quick test_blob_incremental_storage;
          Alcotest.test_case "version bytes" `Quick test_blob_version_bytes;
          Alcotest.test_case "replication survives provider loss" `Quick
            test_blob_replication_survives_provider_loss;
          Alcotest.test_case "replication 3 survives two losses" `Quick
            test_blob_replication3_survives_two_losses;
          Alcotest.test_case "provider transient disk retried" `Quick
            test_provider_transient_disk_retried;
          Alcotest.test_case "unreplicated loss raises" `Quick test_blob_unreplicated_loss_raises;
          Alcotest.test_case "concurrent writers merge" `Quick test_blob_concurrent_writers_merge;
          Alcotest.test_case "striping spreads load" `Quick test_blob_striping_spreads_load;
          Alcotest.test_case "write takes simulated time" `Quick
            test_blob_write_takes_simulated_time;
          Alcotest.test_case "open blob by id" `Quick test_open_blob_by_id;
        ]
        @ qsuite [ prop_blob_matches_reference ] );
      ( "placement",
        [
          Alcotest.test_case "never co-locates replicas" `Quick
            test_placement_never_colocates_replicas;
          Alcotest.test_case "degraded when hosts short" `Quick
            test_placement_degraded_when_hosts_short;
          Alcotest.test_case "strict mode raises when hosts short" `Quick
            test_placement_strict_raises_when_hosts_short;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "checksum mismatch fails over" `Quick test_read_checksum_failover;
          Alcotest.test_case "all copies corrupt raises typed error" `Quick
            test_read_all_copies_corrupt_raises;
        ] );
      ( "journal",
        [
          Alcotest.test_case "publish crash before apply" `Quick
            test_publish_crash_before_apply_rolls_back;
          Alcotest.test_case "publish crash mid apply" `Quick
            test_publish_crash_mid_apply_rolls_back;
          Alcotest.test_case "clone crash rolls back" `Quick test_clone_crash_rolls_back;
          Alcotest.test_case "metadata crash recovery" `Quick test_metadata_crash_recovery;
        ] );
      ( "scrubber",
        [
          Alcotest.test_case "repairs corrupt replica" `Quick
            test_scrubber_repairs_corrupt_replica;
          Alcotest.test_case "re-replicates lost copies" `Quick
            test_scrubber_re_replicates_lost_copies;
          Alcotest.test_case "unrepairable reported" `Quick test_scrubber_unrepairable_reported;
          Alcotest.test_case "quorum failure defers repair" `Quick
            test_scrubber_quorum_failure_defers_repair;
        ] );
    ]
