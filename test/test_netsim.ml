(* Tests for the rate server, network model and storage substrates. *)

open Simcore
open Netsim
open Storage

let check_float = Alcotest.(check (float 1e-6))

let in_sim f =
  let e = Engine.create () in
  let result = ref None in
  let _ = Engine.Fiber.spawn e (fun () -> result := Some (f e)) in
  Engine.run e;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Rate_server *)

let test_rate_server_service_time () =
  let elapsed =
    in_sim (fun e ->
        let s = Rate_server.create e ~rate:100.0 ~per_op:0.5 () in
        let t0 = Engine.now e in
        Rate_server.process s 200;
        Engine.now e -. t0)
  in
  check_float "per_op + bytes/rate" 2.5 elapsed

let test_rate_server_fifo_queueing () =
  let e = Engine.create () in
  let s = Rate_server.create e ~rate:100.0 () in
  let finish_times = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.Fiber.spawn e (fun () ->
           Rate_server.process s 100;
           finish_times := (i, Engine.now e) :: !finish_times))
  done;
  Engine.run e;
  Alcotest.(check (list (pair int (float 1e-6))))
    "serialized in arrival order"
    [ (1, 1.0); (2, 2.0); (3, 3.0) ]
    (List.rev !finish_times)

let test_rate_server_accounting () =
  let e = Engine.create () in
  let s = Rate_server.create e ~rate:50.0 () in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Rate_server.process s 100;
        Rate_server.process s 50)
  in
  Engine.run e;
  Alcotest.(check int) "ops" 2 (Rate_server.ops s);
  Alcotest.(check int) "bytes" 150 (Rate_server.bytes_served s);
  check_float "busy" 3.0 (Rate_server.busy_time s);
  check_float "utilization" 1.0 (Rate_server.utilization s)

let test_rate_server_rejects_bad_args () =
  let e = Engine.create () in
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Rate_server.create: rate must be positive") (fun () ->
      ignore (Rate_server.create e ~rate:0.0 ()))

let test_rate_server_seeks_on_stream_switch () =
  let e = Engine.create () in
  let s = Rate_server.create e ~rate:1e9 ~seek:0.01 () in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        (* Same stream: one seek. Alternating streams: a seek each time. *)
        Rate_server.process s ~stream:1 100;
        Rate_server.process s ~stream:1 100;
        Rate_server.process s ~stream:2 100;
        Rate_server.process s ~stream:1 100)
  in
  Engine.run e;
  Alcotest.(check int) "three switches" 3 (Rate_server.seeks s);
  check_float "seek time charged" 0.03 (Rate_server.busy_time s -. 4e-7)

let test_rate_server_anonymous_requests_never_seek () =
  let e = Engine.create () in
  let s = Rate_server.create e ~rate:1e9 ~seek:0.01 () in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Rate_server.process s ~stream:1 0;
        Rate_server.process s 0;
        (* anonymous: no seek, stream memory kept *)
        Rate_server.process s ~stream:1 0)
  in
  Engine.run e;
  Alcotest.(check int) "one seek only" 1 (Rate_server.seeks s)

let test_disk_sequential_vs_interleaved () =
  (* The contention mechanism behind the paper's "write pressure under
     concurrency": one sequential stream is fast; interleaved streams pay a
     seek per switch. *)
  let run interleaved =
    let e = Engine.create () in
    let d = Disk.create e ~rate:1e9 ~per_op:0.0 ~seek:0.008 () in
    let _ =
      Engine.Fiber.spawn e (fun () ->
          for i = 1 to 50 do
            let stream = if interleaved then i mod 2 else 0 in
            Disk.write d ~stream 1000
          done)
    in
    Engine.run e;
    Engine.now e
  in
  let sequential = run false and interleaved = run true in
  Alcotest.(check bool)
    (Fmt.str "interleaved %.3fs >> sequential %.3fs" interleaved sequential)
    true
    (interleaved > 10.0 *. sequential)

(* ------------------------------------------------------------------ *)
(* Net *)

let two_host_net ?(config = { Net.default_config with latency = 0.0 }) e =
  let net = Net.create e config in
  let a = Net.add_host net ~name:"a" in
  let b = Net.add_host net ~name:"b" in
  (net, a, b)

let test_net_transfer_rate () =
  (* 1 MiB at 1 MiB/s with zero latency takes 1 s (pipelined stages do not
     double-charge). *)
  let e = Engine.create () in
  let config =
    {
      Net.bandwidth = float_of_int Size.mib;
      latency = 0.0;
      segment_size = 64 * Size.kib;
      fabric_bandwidth = None;
    }
  in
  let net, a, b = two_host_net ~config e in
  let elapsed = ref 0.0 in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        let t0 = Engine.now e in
        Net.transfer net ~src:a ~dst:b Size.mib;
        elapsed := Engine.now e -. t0)
  in
  Engine.run e;
  (* One extra segment of pipeline fill: 1 s + segment/bw = 1.0625 s. *)
  Alcotest.(check bool) "within pipeline fill of ideal" true
    (!elapsed >= 1.0 && !elapsed <= 1.07);
  Alcotest.(check int) "sent" Size.mib (Net.bytes_sent a);
  Alcotest.(check int) "received" Size.mib (Net.bytes_received b)

let test_net_latency_only_message () =
  let e = Engine.create () in
  let config = { Net.default_config with latency = 0.25 } in
  let net, a, b = two_host_net ~config e in
  let elapsed = ref 0.0 in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Net.message net ~src:a ~dst:b;
        elapsed := Engine.now e)
  in
  Engine.run e;
  check_float "latency" 0.25 !elapsed

let test_net_local_transfer_free () =
  let e = Engine.create () in
  let net, a, _ = two_host_net e in
  let elapsed = ref 1.0 in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Net.transfer net ~src:a ~dst:a (Size.mib_n 100);
        elapsed := Engine.now e)
  in
  Engine.run e;
  check_float "free" 0.0 !elapsed

let test_net_incast_contention () =
  (* Many senders to one receiver are bottlenecked by the receiver downlink:
     4 senders of 1 MiB each at 1 MiB/s take ~4 s total, while 4 disjoint
     pairs take ~1 s. *)
  let mk_config =
    {
      Net.bandwidth = float_of_int Size.mib;
      latency = 0.0;
      segment_size = 64 * Size.kib;
      fabric_bandwidth = None;
    }
  in
  let incast =
    let e = Engine.create () in
    let net = Net.create e mk_config in
    let dst = Net.add_host net ~name:"sink" in
    let srcs = List.init 4 (fun i -> Net.add_host net ~name:(Fmt.str "s%d" i)) in
    List.iter
      (fun src ->
        ignore (Engine.Fiber.spawn e (fun () -> Net.transfer net ~src ~dst Size.mib)))
      srcs;
    Engine.run e;
    Engine.now e
  in
  let disjoint =
    let e = Engine.create () in
    let net = Net.create e mk_config in
    let pairs =
      List.init 4 (fun i ->
          (Net.add_host net ~name:(Fmt.str "a%d" i), Net.add_host net ~name:(Fmt.str "b%d" i)))
    in
    List.iter
      (fun (src, dst) ->
        ignore (Engine.Fiber.spawn e (fun () -> Net.transfer net ~src ~dst Size.mib)))
      pairs;
    Engine.run e;
    Engine.now e
  in
  Alcotest.(check bool)
    (Fmt.str "incast (%.2fs) ~4x disjoint (%.2fs)" incast disjoint)
    true
    (incast > 3.5 *. disjoint && incast < 4.5 *. disjoint)

let test_net_fabric_oversubscription () =
  (* With a fabric capped at one NIC's rate, two disjoint transfers take
     twice as long as with a non-blocking fabric. *)
  let run fabric_bandwidth =
    let e = Engine.create () in
    let config =
      {
        Net.bandwidth = float_of_int Size.mib;
        latency = 0.0;
        segment_size = 64 * Size.kib;
        fabric_bandwidth;
      }
    in
    let net = Net.create e config in
    let mk i =
      (Net.add_host net ~name:(Fmt.str "a%d" i), Net.add_host net ~name:(Fmt.str "b%d" i))
    in
    let pairs = [ mk 0; mk 1 ] in
    List.iter
      (fun (src, dst) ->
        ignore (Engine.Fiber.spawn e (fun () -> Net.transfer net ~src ~dst Size.mib)))
      pairs;
    Engine.run e;
    Engine.now e
  in
  let unconstrained = run None in
  let constrained = run (Some (float_of_int Size.mib)) in
  Alcotest.(check bool)
    (Fmt.str "constrained %.2f ~2x unconstrained %.2f" constrained unconstrained)
    true
    (constrained > 1.8 *. unconstrained)

let test_net_transfer_zero_bytes () =
  let e = Engine.create () in
  let net, a, b = two_host_net e in
  let done_ = ref false in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Net.transfer net ~src:a ~dst:b 0;
        done_ := true)
  in
  Engine.run e;
  Alcotest.(check bool) "completes" true !done_

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_net_partition_heal_releases_queued () =
  (* Traffic launched into a partition must survive an early heal: the
     stalled deliveries complete at the heal instant (not the original
     partition deadline) and are counted in delivered_after_heal. *)
  let e = Engine.create () in
  let config = { Net.default_config with latency = 0.01 } in
  let net, a, b = two_host_net ~config e in
  let message_done = ref (-1.0) and transfer_done = ref (-1.0) in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Net.partition net ~side:(fun h -> h == a) ~until:100.0;
        let _ =
          Engine.Fiber.spawn e (fun () ->
              Net.message net ~src:a ~dst:b;
              message_done := Engine.now e)
        in
        let _ =
          Engine.Fiber.spawn e (fun () ->
              Net.transfer net ~src:a ~dst:b Size.mib;
              transfer_done := Engine.now e)
        in
        Engine.sleep e 2.0;
        Net.heal net)
  in
  Engine.run e;
  Alcotest.(check bool) "message released at heal, not deadline" true
    (!message_done >= 2.0 && !message_done < 10.0);
  Alcotest.(check bool) "transfer released at heal, not deadline" true
    (!transfer_done >= 2.0 && !transfer_done < 10.0);
  Alcotest.(check int) "both deliveries counted" 2 (Net.delivered_after_heal net);
  Alcotest.(check int) "transfer bytes arrived intact" Size.mib (Net.bytes_received b)

let test_disk_rw_times () =
  let e = Engine.create () in
  let d = Disk.create e ~rate:100.0 ~per_op:0.0 ~capacity:1000 ~name:"d" () in
  let times = ref [] in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Disk.write d 100;
        times := Engine.now e :: !times;
        Disk.read d 50;
        times := Engine.now e :: !times)
  in
  Engine.run e;
  Alcotest.(check (list (float 1e-6))) "write then read" [ 1.0; 1.5 ] (List.rev !times);
  Alcotest.(check int) "used" 100 (Disk.used d);
  Alcotest.(check int) "read bytes" 50 (Disk.bytes_read d)

let test_disk_capacity_enforced () =
  let e = Engine.create () in
  let d = Disk.create e ~rate:1e9 ~capacity:100 () in
  let overflowed = ref false in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Disk.write d 80;
        (try Disk.write d 30 with Disk.Full _ -> overflowed := true);
        Disk.free d 50;
        Disk.write d 30)
  in
  Engine.run e;
  Alcotest.(check bool) "overflow rejected" true !overflowed;
  Alcotest.(check int) "after free+write" 60 (Disk.used d)

let test_disk_contention_serializes () =
  let e = Engine.create () in
  let d = Disk.create e ~rate:100.0 ~per_op:0.0 () in
  for _ = 1 to 4 do
    ignore (Engine.Fiber.spawn e (fun () -> Disk.write d 100))
  done;
  Engine.run e;
  check_float "serialized" 4.0 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Content_store *)

let test_content_store_roundtrip () =
  let cs = Content_store.create () in
  let id = Content_store.put cs (Payload.of_string "hello") in
  Alcotest.(check string) "get" "hello" (Payload.to_string (Content_store.get cs id));
  Alcotest.(check int) "bytes" 5 (Content_store.total_bytes cs);
  Alcotest.(check int) "count" 1 (Content_store.chunk_count cs)

let test_content_store_refcounting () =
  let cs = Content_store.create () in
  let id = Content_store.put cs (Payload.of_string "abc") in
  Content_store.incr_ref cs id;
  Content_store.decr_ref cs id;
  Alcotest.(check bool) "still live" true (Content_store.mem cs id);
  Content_store.decr_ref cs id;
  Alcotest.(check bool) "dead" false (Content_store.mem cs id);
  Alcotest.(check int) "bytes freed" 0 (Content_store.total_bytes cs);
  Alcotest.(check int) "refs of dead" 0 (Content_store.refs cs id)

let test_content_store_distinct_ids () =
  let cs = Content_store.create () in
  let a = Content_store.put cs (Payload.of_string "x") in
  let b = Content_store.put cs (Payload.of_string "x") in
  Alcotest.(check bool) "distinct" true (a <> b)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "netsim_storage"
    [
      ( "rate_server",
        [
          Alcotest.test_case "service time" `Quick test_rate_server_service_time;
          Alcotest.test_case "fifo queueing" `Quick test_rate_server_fifo_queueing;
          Alcotest.test_case "accounting" `Quick test_rate_server_accounting;
          Alcotest.test_case "rejects bad args" `Quick test_rate_server_rejects_bad_args;
          Alcotest.test_case "seeks on stream switch" `Quick
            test_rate_server_seeks_on_stream_switch;
          Alcotest.test_case "anonymous requests never seek" `Quick
            test_rate_server_anonymous_requests_never_seek;
          Alcotest.test_case "sequential vs interleaved disk" `Quick
            test_disk_sequential_vs_interleaved;
        ] );
      ( "net",
        [
          Alcotest.test_case "transfer rate" `Quick test_net_transfer_rate;
          Alcotest.test_case "latency-only message" `Quick test_net_latency_only_message;
          Alcotest.test_case "local transfer free" `Quick test_net_local_transfer_free;
          Alcotest.test_case "incast contention" `Quick test_net_incast_contention;
          Alcotest.test_case "fabric oversubscription" `Quick test_net_fabric_oversubscription;
          Alcotest.test_case "zero-byte transfer" `Quick test_net_transfer_zero_bytes;
          Alcotest.test_case "partition heal releases queued traffic" `Quick
            test_net_partition_heal_releases_queued;
        ] );
      ( "disk",
        [
          Alcotest.test_case "read/write times" `Quick test_disk_rw_times;
          Alcotest.test_case "capacity enforced" `Quick test_disk_capacity_enforced;
          Alcotest.test_case "contention serializes" `Quick test_disk_contention_serializes;
        ] );
      ( "content_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_content_store_roundtrip;
          Alcotest.test_case "refcounting" `Quick test_content_store_refcounting;
          Alcotest.test_case "distinct ids" `Quick test_content_store_distinct_ids;
        ] );
    ]
