(* Tests for live checkpointing: the mirror's frozen epochs (freeze /
   commit_frozen / abort_frozen), copy-on-write preservation of frozen
   bytes under racing guest writes, digest-cache coherence on both forks
   of the clone, rollback when a crash lands mid-background-commit, the
   full live checkpoint/restart round trip, and the suspend-window
   shrinkage the precopy experiment exists to demonstrate. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). A leaked
   frozen epoch at teardown is itself a violation the audit reports. *)
let () = Analysis.Invariants.install ()

(* ------------------------------------------------------------------ *)
(* Mirror-level rig: a small BlobSeer deployment and a 4-chunk mirror. *)

type rig = {
  engine : Engine.t;
  service : Client.t;
  client_host : Net.host;
  nodes : (Net.host * Disk.t) array;
}

let make_rig ?(providers = 4) ?(replication = 1) ?(stripe = 256) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = [ Net.add_host net ~name:"meta0" ] in
  let data =
    Array.init providers (fun i ->
        let host = Net.add_host net ~name:(Fmt.str "node%d" i) in
        let disk = Disk.create engine ~name:(Fmt.str "disk%d" i) () in
        (host, disk))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params = { Types.default_params with stripe_size = stripe; replication } in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts
      ~data_providers:(Array.to_list data) ()
  in
  { engine; service; client_host; nodes = data }

let run_rig rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine ~name:"test-main" (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

let setup_mirror rig ~content ~name =
  let base =
    Client.create_blob rig.service ~from:rig.client_host ~capacity:(String.length content)
  in
  let v = Client.write base ~from:rig.client_host ~offset:0 (Payload.of_string content) in
  let host, disk = rig.nodes.(0) in
  Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v ~name ()

let read_ckpt rig m ~version ~offset ~len =
  let ckpt = Option.get (Mirror.checkpoint_image m) in
  Payload.to_string (Client.read ckpt ~from:rig.client_host ~version ~offset ~len)

let check_cache_coherent ~msg m =
  List.iter
    (fun (chunk, cached) ->
      Alcotest.(check int64)
        (Fmt.str "%s: chunk %d cache coherent" msg chunk)
        (Payload.digest (Mirror.peek_chunk_payload m ~chunk))
        cached)
    (Mirror.digest_view m)

let audit_invariants m =
  List.map (fun x -> x.Analysis.Invariants.invariant) (Analysis.Invariants.audit_mirror m)

(* ------------------------------------------------------------------ *)
(* Frozen epochs under racing guest writes *)

let test_freeze_cow_preserves_frozen_bytes () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let m = setup_mirror rig ~content:(String.make 1024 'Z') ~name:"m" in
      Mirror.write m ~offset:0 (Payload.of_string (String.make 512 'A'));
      Alcotest.(check (list int)) "two dirty chunks" [ 0; 1 ] (Mirror.dirty_view m);
      (* Freeze: the dirty set becomes the frozen epoch, the live set
         restarts empty — this is the CLONE boundary. *)
      Mirror.freeze m;
      Alcotest.(check bool) "frozen active" true (Mirror.frozen_active m);
      Alcotest.(check (list int)) "epoch captured" [ 0; 1 ] (Mirror.frozen_pending_view m);
      Alcotest.(check (list int)) "live set restarts empty" [] (Mirror.dirty_view m);
      (* The guest races the background ship: chunk 0 is overwritten (its
         frozen bytes must be preserved copy-on-write), chunk 2 is new
         post-clone damage. *)
      Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'X'));
      Mirror.write m ~offset:512 (Payload.of_string (String.make 256 'C'));
      Alcotest.(check (list int)) "only chunk 0 copied" [ 0 ] (Mirror.frozen_copied_view m);
      Alcotest.(check int) "one COW chunk charged" 1 (Mirror.cow_chunks m);
      Alcotest.(check int) "COW bytes charged" 256 (Mirror.cow_bytes m);
      Alcotest.(check (list int)) "post-clone writes tracked" [ 0; 2 ] (Mirror.dirty_view m);
      Alcotest.(check string) "frozen bytes survive the overwrite"
        (String.make 256 'A')
        (Payload.to_string (Mirror.peek_frozen_payload m ~chunk:0));
      (* Mid-epoch, the only violation is the liveness marker itself (an
         epoch still active *at teardown* is a leak); the subset and
         coherence checks over both forks must pass. *)
      Alcotest.(check (list string)) "frozen epoch audits clean" [ "frozen-resolved" ]
        (audit_invariants m);
      (* The background commit publishes the *frozen* content — the bytes
         at the clone point, not what the guest wrote since. *)
      let v1 = Mirror.commit_frozen m in
      Alcotest.(check bool) "epoch resolved" false (Mirror.frozen_active m);
      Alcotest.(check string) "snapshot has clone-point bytes"
        (String.make 512 'A' ^ String.make 512 'Z')
        (read_ckpt rig m ~version:v1 ~offset:0 ~len:1024);
      Alcotest.(check (list int)) "dirty set exact across the boundary" [ 0; 2 ]
        (Mirror.dirty_view m);
      (* The next (classic) commit ships the guest's current bytes. *)
      let v2 = Mirror.commit m in
      Alcotest.(check string) "next snapshot has live bytes"
        (String.make 256 'X' ^ String.make 256 'A' ^ String.make 256 'C'
       ^ String.make 256 'Z')
        (read_ckpt rig m ~version:v2 ~offset:0 ~len:1024);
      Alcotest.(check (list string)) "mirror audits clean" [] (audit_invariants m))

let test_frozen_digest_cache_coherent_on_both_forks () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let m = setup_mirror rig ~content:(String.make 1024 'Z') ~name:"m" in
      (* Full-chunk writes seed the live digest cache inline. *)
      Mirror.write m ~offset:0 (Payload.of_string (String.make 512 'B'));
      let frozen_digest = List.assoc 0 (Mirror.digest_view m) in
      Mirror.freeze m;
      (* Freeze captured the digests; a partial overwrite then invalidates
         the *live* entry and preserves the frozen bytes copy-on-write.
         The frozen fork's digest must keep describing the frozen bytes. *)
      Mirror.write m ~offset:0 (Payload.of_string (String.make 32 '!'));
      Alcotest.(check bool) "live entry invalidated" false
        (List.mem_assoc 0 (Mirror.digest_view m));
      Alcotest.(check int64) "frozen digest describes frozen bytes"
        (Payload.digest (Mirror.peek_frozen_payload m ~chunk:0))
        (List.assoc 0 (Mirror.frozen_digest_view m));
      Alcotest.(check int64) "frozen digest carried from freeze time" frozen_digest
        (List.assoc 0 (Mirror.frozen_digest_view m));
      check_cache_coherent ~msg:"live fork before commit" m;
      Alcotest.(check (list string)) "both forks audit clean" [ "frozen-resolved" ]
        (audit_invariants m);
      ignore (Mirror.commit_frozen m);
      (* The commit must not re-seed the live cache for the guest-overwritten
         chunk: the descriptor it minted describes the frozen bytes, while
         the live bytes have moved on. Untouched chunk 1 may re-seed. *)
      Alcotest.(check bool) "no stale re-seed for the copied chunk" false
        (List.mem_assoc 0 (Mirror.digest_view m));
      Alcotest.(check bool) "untouched frozen chunk re-seeded" true
        (List.mem_assoc 1 (Mirror.digest_view m));
      check_cache_coherent ~msg:"live fork after commit" m;
      ignore (Mirror.commit m);
      check_cache_coherent ~msg:"after draining the live set" m;
      Alcotest.(check (list string)) "mirror audits clean" [] (audit_invariants m))

let test_abort_frozen_folds_back () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let m = setup_mirror rig ~content:(String.make 1024 'Z') ~name:"m" in
      Mirror.write m ~offset:0 (Payload.of_string (String.make 512 'A'));
      let local_before = Mirror.local_bytes m in
      Mirror.freeze m;
      Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'X'));
      Mirror.write m ~offset:512 (Payload.of_string (String.make 256 'C'));
      let with_frozen = Mirror.local_bytes m in
      (* Abort: the snapshot will never complete — frozen chunks fold back
         into the dirty set, the preserved copies and their disk reservation
         are dropped, and the next commit ships the *current* bytes. *)
      Mirror.abort_frozen m;
      Alcotest.(check bool) "epoch resolved" false (Mirror.frozen_active m);
      Alcotest.(check (list int)) "union of frozen and post-clone damage" [ 0; 1; 2 ]
        (Mirror.dirty_view m);
      (* Only the 256-byte COW copy is released; the post-clone write to
         chunk 2 legitimately stays cached locally. *)
      Alcotest.(check int) "diff-log reservation released" (with_frozen - 256)
        (Mirror.local_bytes m);
      Alcotest.(check int) "only the new chunk beyond the pre-freeze set"
        (local_before + 256) (Mirror.local_bytes m);
      Alcotest.(check (list string)) "mirror audits clean" [] (audit_invariants m);
      let v = Mirror.commit m in
      Alcotest.(check string) "retry ships current bytes"
        (String.make 256 'X' ^ String.make 256 'A' ^ String.make 256 'C'
       ^ String.make 256 'Z')
        (read_ckpt rig m ~version:v ~offset:0 ~len:1024);
      (* Aborting with no epoch active is a no-op. *)
      Mirror.abort_frozen m)

let test_frozen_epoch_guards () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let m = setup_mirror rig ~content:(String.make 1024 'Z') ~name:"m" in
      Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'A'));
      Mirror.freeze m;
      Alcotest.check_raises "classic commit refused while frozen"
        (Invalid_argument "Mirror.commit: a frozen epoch is active (commit or abort it first)")
        (fun () -> ignore (Mirror.commit m));
      Alcotest.check_raises "double freeze refused"
        (Invalid_argument "Mirror.freeze: a frozen epoch is already active") (fun () ->
          Mirror.freeze m);
      ignore (Mirror.commit_frozen m))

(* ------------------------------------------------------------------ *)
(* Stack-level: live checkpoints through Approach / Ckpt_proxy *)

open Blobcr

let live ?(rounds = 2) ?(background = true) () = Approach.Live { rounds; background }

let test_live_checkpoint_restart_roundtrip () =
  let cluster = Cluster.build ~seed:7 Calibration.quick_test in
  let ok =
    Cluster.run cluster (fun () ->
        let inst =
          Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"vm0"
        in
        let bench = Workloads.Synthetic.start inst ~buffer_bytes:(4 * Size.mib) in
        let before = Payload.digest (Workloads.Synthetic.buffer bench) in
        Workloads.Synthetic.dump_app bench;
        let snapshot = Approach.request_checkpoint ~mode:(live ()) cluster inst in
        Alcotest.(check bool) "vm running after live checkpoint" true
          (Vmsim.Vm.state inst.Approach.vm = Vmsim.Vm.Running);
        Approach.kill inst;
        let inst' =
          Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0r" snapshot
        in
        let restored = Workloads.Synthetic.restore_app inst' in
        Payload.digest (Workloads.Synthetic.buffer restored) = before)
  in
  Alcotest.(check bool) "state restored from live snapshot" true ok

let test_crash_during_background_commit_rolls_back () =
  let cluster = Cluster.build ~seed:7 Calibration.quick_test in
  Cluster.run cluster (fun () ->
      let inst =
        Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"vm0"
      in
      let mirror =
        match inst.Approach.stack with
        | Approach.Mirror_stack m -> m
        | Approach.Qcow2_stack _ -> Alcotest.fail "expected a mirror stack"
      in
      let bench = Workloads.Synthetic.start inst ~buffer_bytes:(2 * Size.mib) in
      Workloads.Synthetic.dump_app bench;
      let good = Approach.request_checkpoint ~mode:(live ()) cluster inst in
      (* Next epoch: dirty new state, then arm the version manager to crash
         mid-apply — with rounds = 0 the first publish is the background
         commit itself, so the crash lands while the frozen delta ships
         after the VM has already resumed. *)
      Workloads.Synthetic.refill bench;
      Workloads.Synthetic.dump_app bench;
      Version_manager.arm_crash (Client.version_manager cluster.Cluster.service)
        Version_manager.Mid_apply;
      let failed =
        try
          ignore
            (Approach.request_checkpoint ~mode:(live ~rounds:0 ()) cluster inst);
          None
        with e -> Some e
      in
      (match failed with
      | None -> Alcotest.fail "checkpoint should have failed"
      | Some e ->
          Alcotest.(check string) "typed service-crash error" "service-crash"
            (Fmt.str "%a" Protocol.pp_error_class (Protocol.error_class e)));
      (* The abort path must leave the mirror retryable: no leaked frozen
         epoch, the delta folded back into the dirty set, the VM running. *)
      Alcotest.(check bool) "no leaked frozen epoch" false (Mirror.frozen_active mirror);
      Alcotest.(check bool) "delta folded back" true (Mirror.dirty_chunks mirror > 0);
      Alcotest.(check bool) "vm running after failed background commit" true
        (Vmsim.Vm.state inst.Approach.vm = Vmsim.Vm.Running);
      Alcotest.(check (list string)) "mirror audits clean" [] (audit_invariants mirror);
      (* Heal the service; the previous snapshot set stays authoritative —
         a restart from it boots while the failed epoch is still unshipped. *)
      Version_manager.restart (Client.version_manager cluster.Cluster.service);
      let rb =
        Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0rb" good
      in
      Alcotest.(check bool) "last committed snapshot restartable" true
        (Vmsim.Vm.state rb.Approach.vm = Vmsim.Vm.Running);
      Approach.kill rb;
      (* Retry: the same epoch ships cleanly. *)
      let retried = Approach.request_checkpoint ~mode:(live ()) cluster inst in
      Approach.kill inst;
      let inst' =
        Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0r" retried
      in
      let restored = Workloads.Synthetic.restore_app inst' in
      Alcotest.(check int64) "retried snapshot restores the new state"
        (Payload.digest (Workloads.Synthetic.buffer bench))
        (Payload.digest (Workloads.Synthetic.buffer restored)))

(* ------------------------------------------------------------------ *)
(* The acceptance claim: pre-copy + background commit shrink the
   application-perceived suspend window; live modes pay for it in shipped
   bytes (pre-copy overship) and copy-on-write traffic. *)

let test_precopy_shrinks_suspend_window () =
  let scale = Experiments.Scale.quick in
  let point mode rounds =
    Experiments.Precopy.run_point scale ~interval:2.0 ~dirty_mbps:2.0 ~rounds ~mode ()
  in
  let stw = point "stw" 0 in
  let sync = point "live-sync" 2 in
  let bg = point "live-bg" 2 in
  Alcotest.(check bool)
    (Fmt.str "final-delta suspend beats stop-the-world (%.3fs < %.3fs)"
       sync.Experiments.Precopy.suspend_max stw.Experiments.Precopy.suspend_max)
    true
    (sync.Experiments.Precopy.suspend_max < stw.Experiments.Precopy.suspend_max);
  Alcotest.(check bool)
    (Fmt.str "background commit shrinks it further (%.3fs < %.3fs)"
       bg.Experiments.Precopy.suspend_max sync.Experiments.Precopy.suspend_max)
    true
    (bg.Experiments.Precopy.suspend_max <= sync.Experiments.Precopy.suspend_max);
  Alcotest.(check bool) "pre-copy overships" true
    (bg.Experiments.Precopy.shipped_bytes >= stw.Experiments.Precopy.shipped_bytes);
  Alcotest.(check bool) "background commit pays COW traffic" true
    (bg.Experiments.Precopy.cow_bytes > 0);
  Alcotest.(check bool) "writer made progress" true
    (bg.Experiments.Precopy.achieved_mbps > 0.0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "precopy"
    [
      ( "frozen epochs",
        [
          Alcotest.test_case "COW preserves frozen bytes under racing writes" `Quick
            test_freeze_cow_preserves_frozen_bytes;
          Alcotest.test_case "digest cache coherent on both forks" `Quick
            test_frozen_digest_cache_coherent_on_both_forks;
          Alcotest.test_case "abort folds the epoch back" `Quick test_abort_frozen_folds_back;
          Alcotest.test_case "commit/freeze guards" `Quick test_frozen_epoch_guards;
        ] );
      ( "live checkpoint",
        [
          Alcotest.test_case "checkpoint/restart round trip" `Quick
            test_live_checkpoint_restart_roundtrip;
          Alcotest.test_case "crash mid-background-commit rolls back" `Quick
            test_crash_during_background_commit_rolls_back;
        ] );
      ( "suspend window",
        [
          Alcotest.test_case "pre-copy + background commit shrink it" `Quick
            test_precopy_shrinks_suspend_window;
        ] );
    ]
