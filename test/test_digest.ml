(* Tests for the dirty-region digest cache and the incremental Merkle
   digests: payload digest memo survival across reassembly, Merkle
   stability and memo reuse across shadow-shared subtrees, digest-cache
   invalidation on partial-chunk COW writes, dirty-set exactness across
   clone/commit/rollback, hint-mismatch detection on the commit path, the
   digest-cache coherence audit, the scrubber's Merkle precheck, and
   determinism of the digest benchmark experiment. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

type rig = {
  engine : Engine.t;
  service : Client.t;
  client_host : Net.host;
  nodes : (Net.host * Disk.t) array;
}

let make_rig ?(providers = 4) ?(replication = 1) ?(stripe = 256) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = [ Net.add_host net ~name:"meta0" ] in
  let data =
    Array.init providers (fun i ->
        let host = Net.add_host net ~name:(Fmt.str "node%d" i) in
        let disk = Disk.create engine ~name:(Fmt.str "disk%d" i) () in
        (host, disk))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params = { Types.default_params with stripe_size = stripe; replication } in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts
      ~data_providers:(Array.to_list data) ()
  in
  { engine; service; client_host; nodes = data }

let run_rig rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine ~name:"test-main" (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

let setup_base rig ~content =
  let base =
    Client.create_blob rig.service ~from:rig.client_host ~capacity:(String.length content)
  in
  let v = Client.write base ~from:rig.client_host ~offset:0 (Payload.of_string content) in
  (base, v)

let make_mirror rig ~node ~base ~version ~name =
  let host, disk = rig.nodes.(node) in
  Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:version ~name ()

(* Every digest-cache entry must equal the digest of the chunk's current
   local bytes — the coherence invariant the teardown audit samples. *)
let check_cache_coherent ~msg m =
  List.iter
    (fun (chunk, cached) ->
      Alcotest.(check int64)
        (Fmt.str "%s: chunk %d cache coherent" msg chunk)
        (Payload.digest (Mirror.peek_chunk_payload m ~chunk))
        cached)
    (Mirror.digest_view m)

(* ------------------------------------------------------------------ *)
(* Payload digest memoization *)

let test_payload_concat_memo_survives () =
  let p = Payload.pattern ~seed:77L 4096 in
  let d = Payload.digest p in
  let before = Payload.hashed_bytes () in
  (* Single-payload concat returns the value unchanged, so the memoized
     digest survives reassembly (Sparse_bytes.read of one whole block on
     the commit path) and costs zero further hash work. *)
  let q = Payload.concat [ Payload.concat [ p ]; Payload.zero 0 ] in
  Alcotest.(check int64) "same digest" d (Payload.digest q);
  Alcotest.(check int) "no re-hash" before (Payload.hashed_bytes ());
  (* A genuine multi-part concat is a new value and pays for its digest. *)
  let r = Payload.concat [ p; Payload.of_string "x" ] in
  Alcotest.(check bool) "different digest" true (Payload.digest r <> d)

(* ------------------------------------------------------------------ *)
(* Incremental Merkle digests over the segment tree *)

let leaf v = Int64.mul (Int64.of_int (v + 1)) 0x9E3779B97F4A7C15L

let test_merkle_shadow_sharing_reuses () =
  let t0 = Segment_tree.create ~chunks:1024 in
  let full = Array.init 1024 (fun i -> Some i) in
  let v1, _ = Segment_tree.set_range t0 ~start:0 full in
  let r1 = Segment_tree.merkle_digest ~digest:leaf v1 in
  let h1, _ = Segment_tree.merkle_counters () in
  (* A one-leaf update shadows O(log n) nodes; everything else is shared
     with v1 and must be served from the in-node memo. *)
  let v2, created = Segment_tree.set_range v1 ~start:517 [| Some (-1) |] in
  let r2 = Segment_tree.merkle_digest ~digest:leaf v2 in
  let h2, reuses = Segment_tree.merkle_counters () in
  Alcotest.(check bool) "root changed" true (r1 <> r2);
  Alcotest.(check bool)
    (Fmt.str "fresh hashes bounded by shadowed path (%d created, %d hashed)" created
       (h2 - h1))
    true
    (h2 - h1 <= created);
  Alcotest.(check bool) "shared subtrees reused" true (reuses > 0);
  (* Re-digesting either version is a pure memo hit on the root. *)
  let h3, _ = Segment_tree.merkle_counters () in
  Alcotest.(check int64) "v1 stable" r1 (Segment_tree.merkle_digest ~digest:leaf v1);
  Alcotest.(check int64) "v2 stable" r2 (Segment_tree.merkle_digest ~digest:leaf v2);
  let h4, _ = Segment_tree.merkle_counters () in
  Alcotest.(check int) "roots memoized" h3 h4

let test_merkle_content_equal_trees_agree () =
  (* Structurally independent trees with equal content hash to the same
     root (the cross-site agreement the replicator audit relies on). *)
  let build () =
    let t, _ =
      Segment_tree.set_range (Segment_tree.create ~chunks:64) ~start:7
        (Array.init 9 (fun i -> Some (i * 3)))
    in
    t
  in
  let memo = Hashtbl.create 16 in
  Alcotest.(check int64) "independent builds agree"
    (Segment_tree.merkle_digest ~digest:leaf (build ()))
    (Segment_tree.merkle_digest_with ~memo ~digest:leaf (build ()))

(* ------------------------------------------------------------------ *)
(* Mirror digest cache *)

let test_partial_write_invalidates_cache () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let base, v = setup_base rig ~content:(String.make 1024 'Z') in
      let m = make_mirror rig ~node:0 ~base ~version:v ~name:"m" in
      (* Full-chunk write: digest computed inline at write time. *)
      Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'A'));
      Alcotest.(check (list int)) "chunk 0 dirty" [ 0 ] (Mirror.dirty_view m);
      Alcotest.(check bool) "chunk 0 cached" true
        (List.mem_assoc 0 (Mirror.digest_view m));
      check_cache_coherent ~msg:"after full write" m;
      (* Partial overwrite: caching the merged digest would cost a
         read-modify-digest, so the entry must be invalidated instead. *)
      Mirror.write m ~offset:64 (Payload.of_string (String.make 32 'B'));
      Alcotest.(check bool) "chunk 0 entry invalidated" false
        (List.mem_assoc 0 (Mirror.digest_view m));
      check_cache_coherent ~msg:"after partial write" m;
      (* Commit re-digests it once and re-seeds the cache from the
         published descriptor; the spliced bytes round-trip. *)
      let version = Mirror.commit m in
      Alcotest.(check bool) "re-seeded after commit" true
        (List.mem_assoc 0 (Mirror.digest_view m));
      check_cache_coherent ~msg:"after commit" m;
      let ckpt = Option.get (Mirror.checkpoint_image m) in
      Alcotest.(check string) "spliced bytes published"
        (String.make 64 'A' ^ String.make 32 'B' ^ String.make 160 'A')
        (Payload.to_string (Client.read ckpt ~from:rig.client_host ~version ~offset:0 ~len:256)))

let test_clean_rewrite_skips_digest_work () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let base, v = setup_base rig ~content:(String.make 1024 'Z') in
      let m = make_mirror rig ~node:0 ~base ~version:v ~name:"m" in
      Mirror.write m ~offset:256 (Payload.of_string (String.make 256 'C'));
      ignore (Mirror.commit m);
      let before = Client.digest_stats rig.service in
      (* A full-chunk rewrite of exactly the committed bytes hits the
         carried cache at the device: never dirtied, no commit work. *)
      Mirror.write m ~offset:256 (Payload.of_string (String.make 256 'C'));
      Alcotest.(check (list int)) "stays clean" [] (Mirror.dirty_view m);
      let after = Client.digest_stats rig.service in
      Alcotest.(check int) "skip accounted" (before.Client.chunks_skipped + 1)
        after.Client.chunks_skipped;
      Alcotest.(check int) "skipped bytes accounted" (before.Client.bytes_skipped + 256)
        after.Client.bytes_skipped;
      (* The empty commit publishes a version with no digest computed. *)
      ignore (Mirror.commit m);
      let final = Client.digest_stats rig.service in
      Alcotest.(check int) "no digests computed" after.Client.chunks_digested
        final.Client.chunks_digested)

let test_dirty_set_exact_across_clone_rollback () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let base, v = setup_base rig ~content:(String.make 1024 'Z') in
      let m = make_mirror rig ~node:0 ~base ~version:v ~name:"m" in
      Mirror.write m ~offset:0 (Payload.of_string (String.make 300 'D'));
      Alcotest.(check (list int)) "two dirty chunks" [ 0; 1 ] (Mirror.dirty_view m);
      (* CLONE materializes the checkpoint image; the dirty set is
         untouched. *)
      Mirror.clone m;
      Alcotest.(check (list int)) "clone preserves dirty set" [ 0; 1 ] (Mirror.dirty_view m);
      let good = Mirror.commit m in
      Alcotest.(check (list int)) "commit drains dirty set" [] (Mirror.dirty_view m);
      check_cache_coherent ~msg:"after commit" m;
      (* Post-checkpoint damage, then rollback via a fresh mirror of the
         snapshot: the new instance starts with an empty, exact dirty set
         and a clean cache. *)
      Mirror.write m ~offset:512 (Payload.of_string (String.make 17 '!'));
      Alcotest.(check (list int)) "damage tracked exactly" [ 2 ] (Mirror.dirty_view m);
      let ckpt = Option.get (Mirror.checkpoint_image m) in
      let m' = make_mirror rig ~node:1 ~base:ckpt ~version:good ~name:"m-rb" in
      Alcotest.(check (list int)) "rollback starts clean" [] (Mirror.dirty_view m');
      Alcotest.(check (list (pair int int64))) "rollback cache empty" []
        (Mirror.digest_view m');
      Mirror.write m' ~offset:256 (Payload.of_string (String.make 256 'E'));
      Alcotest.(check (list int)) "exact after rollback" [ 1 ] (Mirror.dirty_view m');
      check_cache_coherent ~msg:"after rollback write" m')

let test_taint_all_clears_cache () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let base, v = setup_base rig ~content:(String.make 1024 'Z') in
      let m = make_mirror rig ~node:0 ~base ~version:v ~name:"m" in
      Mirror.write m ~offset:0 (Payload.of_string (String.make 1024 'F'));
      ignore (Mirror.commit m);
      Alcotest.(check bool) "cache populated" true (Mirror.digest_view m <> []);
      (* The whole-image ablation baseline must pay the full re-digest and
         re-ship cost: carried digests would suppress everything. *)
      Mirror.taint_all m;
      Alcotest.(check (list (pair int int64))) "cache cleared" [] (Mirror.digest_view m);
      Alcotest.(check int) "all present chunks dirty" 4 (Mirror.dirty_chunks m);
      let before = Client.digest_stats rig.service in
      ignore (Mirror.commit m);
      let after = Client.digest_stats rig.service in
      Alcotest.(check int) "every chunk re-digested from bytes"
        (before.Client.chunks_digested + 4) after.Client.chunks_digested;
      Alcotest.(check int) "no cache hits" before.Client.chunks_cached
        after.Client.chunks_cached)

let test_hint_mismatch_raises () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let base, _ = setup_base rig ~content:(String.make 1024 'Z') in
      (* A wrong hint on a chunk that must physically ship is a
         cache-coherence bug at the caller and must be refused loudly. *)
      let msg =
        try
          ignore
            (Client.write_chunks base ~from:rig.client_host
               ~hints:[ (0, 0xDEADBEEFL) ]
               [ (0, fun () -> Payload.of_string (String.make 256 'H')) ]);
          "no exception"
        with Invalid_argument msg -> msg
      in
      Alcotest.(check string) "coherence bug refused"
        "Client: digest hint does not match produced content" msg)

let test_coherence_audit_catches_poke () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let base, v = setup_base rig ~content:(String.make 1024 'Z') in
      let m = make_mirror rig ~node:0 ~base ~version:v ~name:"m" in
      Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'P'));
      ignore (Mirror.commit m);
      Alcotest.(check (list string)) "clean mirror audits clean" []
        (List.map
           (fun x -> x.Analysis.Invariants.invariant)
           (Analysis.Invariants.audit_mirror m));
      (* Corrupt one cache entry; the sampled recompute-from-bytes audit
         must flag it. *)
      let chunk, good = List.hd (Mirror.digest_view m) in
      Mirror.unsafe_poke_digest m ~chunk 0x5711L;
      let flagged =
        List.exists
          (fun x -> x.Analysis.Invariants.invariant = "digest-cache-coherent")
          (Analysis.Invariants.audit_mirror m)
      in
      Alcotest.(check bool) "stale digest caught" true flagged;
      (* Restore the entry so the engine's own teardown audit stays green. *)
      Mirror.unsafe_poke_digest m ~chunk good)

(* ------------------------------------------------------------------ *)
(* Scrubber Merkle precheck *)

let test_scrubber_merkle_precheck () =
  let rig = make_rig ~providers:3 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let blob = Client.create_blob rig.service ~from ~capacity:1000 in
      let v = Client.write blob ~from ~offset:0 (Payload.of_string (String.make 300 's')) in
      let scrub = Scrubber.create rig.service ~home:from () in
      (* Healthy pass: the desc-side and storage-side roots agree for every
         live version, so site enumeration is skipped wholesale. *)
      Scrubber.scan scrub;
      let s1 = Scrubber.stats scrub in
      Alcotest.(check bool) "all versions merkle-clean" true
        (s1.Scrubber.merkle_clean_versions > 0);
      Alcotest.(check int) "nothing repaired" 0 s1.Scrubber.repairs;
      let clean_per_pass = s1.Scrubber.merkle_clean_versions in
      (* Corrupt one replica: its version's storage root is poisoned, the
         precheck falls through to enumeration, and repair proceeds exactly
         as without the precheck. *)
      let tree = Client.tree blob ~version:v in
      let desc = Option.get (Segment_tree.get tree 0) in
      let r = List.hd desc.Types.replicas in
      ignore
        (Data_provider.corrupt_chunk
           (Client.data_provider rig.service r.Types.provider)
           ~salt:9 r.Types.chunk);
      Scrubber.scan scrub;
      let s2 = Scrubber.stats scrub in
      Alcotest.(check int) "corruption repaired through precheck" 1 s2.Scrubber.repairs;
      Alcotest.(check bool) "damaged version not counted clean" true
        (s2.Scrubber.merkle_clean_versions - s1.Scrubber.merkle_clean_versions
        < clean_per_pass);
      (* After repair the next pass is fully clean again. *)
      Scrubber.scan scrub;
      let s3 = Scrubber.stats scrub in
      Alcotest.(check int) "clean again after repair" clean_per_pass
        (s3.Scrubber.merkle_clean_versions - s2.Scrubber.merkle_clean_versions);
      Alcotest.(check int) "no further repairs" 1 s3.Scrubber.repairs)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_digest_experiment_deterministic () =
  match Experiments.Registry.find "digest" with
  | None -> Alcotest.fail "digest experiment not registered"
  | Some exp ->
      let report =
        Analysis.Determinism.check_experiment ~exp ~scale:Experiments.Scale.quick ~seed:13
      in
      Alcotest.(check bool)
        (Fmt.str "digest quick deterministic: %a" Analysis.Determinism.pp_report report)
        true
        (Analysis.Determinism.identical report)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "digest"
    [
      ( "payload",
        [ Alcotest.test_case "concat keeps digest memo" `Quick test_payload_concat_memo_survives ]
      );
      ( "merkle",
        [
          Alcotest.test_case "shadow-shared subtrees reuse digests" `Quick
            test_merkle_shadow_sharing_reuses;
          Alcotest.test_case "content-equal trees agree" `Quick
            test_merkle_content_equal_trees_agree;
        ] );
      ( "mirror cache",
        [
          Alcotest.test_case "partial COW write invalidates" `Quick
            test_partial_write_invalidates_cache;
          Alcotest.test_case "clean rewrite skips digest work" `Quick
            test_clean_rewrite_skips_digest_work;
          Alcotest.test_case "dirty set exact across clone/rollback" `Quick
            test_dirty_set_exact_across_clone_rollback;
          Alcotest.test_case "taint_all clears the cache" `Quick test_taint_all_clears_cache;
          Alcotest.test_case "hint mismatch refused" `Quick test_hint_mismatch_raises;
          Alcotest.test_case "coherence audit catches stale digest" `Quick
            test_coherence_audit_catches_poke;
        ] );
      ( "scrubber",
        [
          Alcotest.test_case "merkle precheck skips clean, repairs corrupt" `Quick
            test_scrubber_merkle_precheck;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "digest experiment replays identically" `Quick
            test_digest_experiment_deterministic;
        ] );
    ]
