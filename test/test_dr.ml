(* Tests for the geo-replication subsystem and disaster recovery: journal
   shipping converges the standby to the primary, replay is idempotent
   under duplicate delivery (including dedup refcounts), the in-flight
   window is honoured, promotion reports losses accurately, and a
   supervised run survives a full site crash by failing over — twice,
   byte-identically. *)

open Simcore
open Blobseer
open Blobcr

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

let scale = Experiments.Scale.quick
let quick_cal = scale.Experiments.Scale.cal

(* (index, digest, size) of every written leaf — the logical content of a
   snapshot, independent of placement, serials and replica count. *)
let leaves tree =
  List.rev
    (Segment_tree.fold_set
       (fun i (d : Types.chunk_desc) acc -> (i, d.Types.digest, d.Types.size) :: acc)
       tree [])

let standby_service cluster =
  match cluster.Cluster.dr with
  | Some d -> d.Cluster.standby_service
  | None -> Alcotest.fail "cluster has no standby site"

let check_converged cluster =
  let pvm = Client.version_manager cluster.Cluster.service in
  let svm = Client.version_manager (standby_service cluster) in
  Alcotest.(check (list int)) "same blobs" (Version_manager.blob_ids pvm)
    (Version_manager.blob_ids svm);
  List.iter
    (fun blob ->
      let latest = Version_manager.peek_latest pvm blob in
      Alcotest.(check int)
        (Fmt.str "blob %d latest" blob)
        latest
        (Version_manager.peek_latest svm blob);
      for version = 1 to latest do
        Alcotest.(check bool)
          (Fmt.str "blob %d version %d leaves equal" blob version)
          true
          (leaves (Version_manager.peek_tree pvm ~blob ~version)
          = leaves (Version_manager.peek_tree svm ~blob ~version))
      done)
    (Version_manager.blob_ids pvm)

let write_version cluster ~tag =
  let from = (Cluster.node cluster 0).Cluster.host in
  Client.write cluster.Cluster.base_blob ~from ~offset:0
    (Payload.of_string (tag ^ String.make 300 'x'))

(* Cluster.run drives the engine only until its driver fiber finishes, so
   a driver that wants a converged pair must drain the pipeline itself. *)
let quiesce cluster = Replicator.quiesce (Option.get (Cluster.replicator cluster))

(* ------------------------------------------------------------------ *)
(* Shipping convergence *)

let test_initial_sync_and_live_tail () =
  let cluster = Cluster.build ~dr:Replicator.default_config quick_cal in
  Cluster.run cluster (fun () ->
      let _ = write_version cluster ~tag:"v-a" in
      let _ = write_version cluster ~tag:"v-b" in
      quiesce cluster);
  check_converged cluster;
  let stats = Replicator.stats (Option.get (Cluster.replicator cluster)) in
  Alcotest.(check int) "no lag after drain" 0 stats.Replicator.lag;
  Alcotest.(check bool) "records flowed" true (stats.Replicator.records_applied > 0);
  Alcotest.(check bool) "chunk bytes crossed the WAN" true
    (stats.Replicator.bytes_shipped > 0)

let test_clone_replicated () =
  let cluster = Cluster.build ~dr:Replicator.default_config quick_cal in
  let clone_id =
    Cluster.run cluster (fun () ->
        let v = write_version cluster ~tag:"v-c" in
        let from = cluster.Cluster.supervisor_host in
        let id = Client.blob_id (Client.clone cluster.Cluster.base_blob ~from ~version:v) in
        quiesce cluster;
        id)
  in
  check_converged cluster;
  let svm = Client.version_manager (standby_service cluster) in
  Alcotest.(check bool) "clone exists on standby" true
    (List.mem clone_id (Version_manager.blob_ids svm))

let test_version_ok_on_replicated_snapshot () =
  let cluster = Cluster.build ~dr:Replicator.default_config quick_cal in
  let v =
    Cluster.run cluster (fun () ->
        let v = write_version cluster ~tag:"v-d" in
        quiesce cluster;
        v)
  in
  let r = Option.get (Cluster.replicator cluster) in
  let blob = Client.blob_id cluster.Cluster.base_blob in
  Alcotest.(check bool) "replicated version restorable" true
    (Replicator.version_ok r ~blob ~version:v);
  Alcotest.(check bool) "unpublished version not restorable" false
    (Replicator.version_ok r ~blob ~version:(v + 17))

(* ------------------------------------------------------------------ *)
(* Idempotent replay *)

let test_duplicate_delivery_idempotent () =
  let cluster = Cluster.build ~dr:Replicator.default_config quick_cal in
  let v =
    Cluster.run cluster (fun () ->
        let v = write_version cluster ~tag:"v-e" in
        quiesce cluster;
        v)
  in
  check_converged cluster;
  let r = Option.get (Cluster.replicator cluster) in
  let standby = standby_service cluster in
  let blob = Client.blob_id cluster.Cluster.base_blob in
  let dedup_view () =
    Dedup_index.view (Provider_manager.dedup_index (Client.provider_manager standby))
  in
  let skips_before = (Replicator.stats r).Replicator.duplicate_skips in
  let latest_before = Version_manager.peek_latest (Client.version_manager standby) blob in
  let view_before = dedup_view () in
  (* Redeliver the whole committed history, plus the creation record. *)
  Cluster.run cluster (fun () ->
      Replicator.inject r
        (Version_manager.Blob_created
           {
             blob;
             capacity = Client.capacity cluster.Cluster.base_blob;
             stripe_size = Client.stripe_size cluster.Cluster.base_blob;
           });
      for version = 1 to v do
        Replicator.inject r (Version_manager.Published { blob; version })
      done;
      quiesce cluster);
  check_converged cluster;
  let stats = Replicator.stats r in
  Alcotest.(check int) "every redelivery skipped as duplicate" (skips_before + v + 1)
    stats.Replicator.duplicate_skips;
  Alcotest.(check int) "standby latest unchanged" latest_before
    (Version_manager.peek_latest (Client.version_manager standby) blob);
  Alcotest.(check bool) "standby dedup refcounts unchanged" true
    (dedup_view () = view_before)

let test_repair_records_are_noops () =
  let cluster = Cluster.build ~dr:Replicator.default_config quick_cal in
  let v =
    Cluster.run cluster (fun () ->
        let v = write_version cluster ~tag:"v-f" in
        quiesce cluster;
        v)
  in
  let r = Option.get (Cluster.replicator cluster) in
  let blob = Client.blob_id cluster.Cluster.base_blob in
  let before = Replicator.stats r in
  Cluster.run cluster (fun () ->
      Replicator.inject r (Version_manager.Repaired { blob; version = v; index = 0 });
      quiesce cluster);
  let stats = Replicator.stats r in
  Alcotest.(check int) "repair skipped" (before.Replicator.skipped_repairs + 1)
    stats.Replicator.skipped_repairs;
  check_converged cluster

(* ------------------------------------------------------------------ *)
(* Window bound *)

let test_window_bound_respected () =
  let config = { Replicator.default_config with window = 2 } in
  let cluster = Cluster.build ~dr:config quick_cal in
  Cluster.run cluster (fun () ->
      for i = 1 to 6 do
        ignore (write_version cluster ~tag:(Fmt.str "v-w%d" i))
      done;
      quiesce cluster);
  check_converged cluster;
  let stats = Replicator.stats (Option.get (Cluster.replicator cluster)) in
  Alcotest.(check bool)
    (Fmt.str "max inflight %d <= window 2" stats.Replicator.max_inflight)
    true
    (stats.Replicator.max_inflight <= 2)

(* ------------------------------------------------------------------ *)
(* Promotion and loss accounting *)

let test_promote_after_site_crash () =
  let cluster = Cluster.build ~dr:Replicator.default_config quick_cal in
  let v =
    Cluster.run cluster (fun () ->
        let v = write_version cluster ~tag:"v-g" in
        quiesce cluster;
        v)
  in
  (* Crash the site with nothing in flight: promotion must report zero
     loss and the standby must serve the latest version. *)
  let promotion =
    Cluster.run cluster (fun () ->
        Cluster.crash_site cluster;
        Cluster.promote_standby cluster)
  in
  Alcotest.(check int) "no versions lost" 0 promotion.Replicator.lost_versions;
  Alcotest.(check int) "no bytes lost" 0 promotion.Replicator.lost_bytes;
  Alcotest.(check bool) "cluster marked promoted" true (Cluster.promoted cluster);
  (* t.service now points at the standby; the latest snapshot reads back. *)
  Cluster.run cluster (fun () ->
      let from = cluster.Cluster.supervisor_host in
      let p =
        Client.read cluster.Cluster.base_blob ~from ~version:v ~offset:0 ~len:3
      in
      Alcotest.(check string) "standby serves latest snapshot" "v-g"
        (Payload.to_string p))

let test_crash_site_without_standby_is_noop () =
  let cluster = Cluster.build quick_cal in
  Cluster.run cluster (fun () -> Cluster.crash_site cluster);
  Alcotest.(check bool) "no site failure recorded" false (Cluster.site_failed cluster);
  Alcotest.(check bool) "nodes survive" false (Cluster.node_failed cluster 0)

(* ------------------------------------------------------------------ *)
(* End-to-end disaster recovery *)

let dr_outcome =
  lazy (Experiments.Dr.dr_run scale ~interval:2 ~gang:2 ~units:scale.Experiments.Scale.dr_units ())

let test_failover_end_to_end () =
  let o = Lazy.force dr_outcome in
  Alcotest.(check bool) "run finished on the standby" true
    o.Experiments.Dr.report.Supervisor.finished;
  Alcotest.(check bool) "a failover happened" true o.Experiments.Dr.failed_over;
  Alcotest.(check int) "no integrity failures" 0 o.Experiments.Dr.integrity_failures;
  Alcotest.(check (list string)) "supervisor accounting clean" []
    o.Experiments.Dr.audit;
  Alcotest.(check bool) "RTO measured" true (o.Experiments.Dr.rto > 0.0);
  Alcotest.(check bool) "RPO non-negative" true (o.Experiments.Dr.rpo_versions >= 0)

let test_failover_deterministic_replay () =
  let a = Lazy.force dr_outcome in
  let b =
    Experiments.Dr.dr_run scale ~interval:2 ~gang:2 ~units:scale.Experiments.Scale.dr_units ()
  in
  Alcotest.(check bool) "identical restored state" true
    (a.Experiments.Dr.digests = b.Experiments.Dr.digests);
  Alcotest.(check int) "identical RPO" a.Experiments.Dr.rpo_versions
    b.Experiments.Dr.rpo_versions;
  Alcotest.(check (float 1e-9)) "identical RTO" a.Experiments.Dr.rto b.Experiments.Dr.rto

let () =
  Alcotest.run "dr"
    [
      ( "shipping",
        [
          Alcotest.test_case "initial sync + live tail converge" `Quick
            test_initial_sync_and_live_tail;
          Alcotest.test_case "clone replicated" `Quick test_clone_replicated;
          Alcotest.test_case "version_ok on replicated snapshot" `Quick
            test_version_ok_on_replicated_snapshot;
        ] );
      ( "idempotence",
        [
          Alcotest.test_case "duplicate delivery skipped" `Quick
            test_duplicate_delivery_idempotent;
          Alcotest.test_case "repair records are no-ops" `Quick
            test_repair_records_are_noops;
        ] );
      ( "window",
        [ Alcotest.test_case "in-flight bound respected" `Quick test_window_bound_respected ] );
      ( "promotion",
        [
          Alcotest.test_case "promote after site crash" `Quick test_promote_after_site_crash;
          Alcotest.test_case "crash_site without standby is a no-op" `Quick
            test_crash_site_without_standby_is_noop;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "failover end to end" `Quick test_failover_end_to_end;
          Alcotest.test_case "deterministic replay" `Quick
            test_failover_deterministic_replay;
        ] );
    ]
