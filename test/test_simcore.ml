(* Tests for the simulation kernel: sizes, RNG, payloads, event queue,
   engine fibers, synchronization primitives, cancellation, stats. *)

open Simcore

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Size *)

let test_size_constants () =
  Alcotest.(check int) "kib" 1024 Size.kib;
  Alcotest.(check int) "mib" (1024 * 1024) Size.mib;
  Alcotest.(check int) "mib_n" (50 * 1024 * 1024) (Size.mib_n 50);
  check_float "to_mib" 50.0 (Size.to_mib (Size.mib_n 50))

let test_size_rounding () =
  Alcotest.(check int) "div_ceil exact" 4 (Size.div_ceil 8 2);
  Alcotest.(check int) "div_ceil up" 5 (Size.div_ceil 9 2);
  Alcotest.(check int) "div_ceil zero" 0 (Size.div_ceil 0 7);
  Alcotest.(check int) "round_up" 512 (Size.round_up 300 256);
  Alcotest.(check int) "round_up exact" 256 (Size.round_up 256 256)

let test_size_pp () =
  Alcotest.(check string) "mb" "52.0 MB" (Size.to_string (Size.mib_n 52));
  Alcotest.(check string) "b" "17 B" (Size.to_string 17);
  Alcotest.(check string) "kb" "1.5 KB" (Size.to_string 1536)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.int64 a = Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_positive () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 10.0 > 0.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  Alcotest.(check bool) "diverge" false (Rng.int64 a = Rng.int64 b)

let test_rng_byte_at_pure () =
  Alcotest.(check char) "pure" (Rng.byte_at ~seed:5L 100) (Rng.byte_at ~seed:5L 100);
  let distinct = ref 0 in
  for i = 0 to 255 do
    if Rng.byte_at ~seed:5L i <> Rng.byte_at ~seed:6L i then incr distinct
  done;
  Alcotest.(check bool) "seeds differ" true (!distinct > 200)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Payload *)

let payload = Alcotest.testable Payload.pp Payload.equal

let test_payload_basics () =
  let p = Payload.of_string "hello world" in
  Alcotest.(check int) "length" 11 (Payload.length p);
  Alcotest.(check string) "roundtrip" "hello world" (Payload.to_string p);
  Alcotest.(check char) "byte_at" 'w' (Payload.byte_at p 6)

let test_payload_zero () =
  let p = Payload.zero 5 in
  Alcotest.(check string) "zeros" "\000\000\000\000\000" (Payload.to_string p)

let test_payload_sub () =
  let p = Payload.of_string "abcdefgh" in
  Alcotest.(check string) "middle" "cde" (Payload.to_string (Payload.sub p ~pos:2 ~len:3));
  Alcotest.(check string) "empty" "" (Payload.to_string (Payload.sub p ~pos:4 ~len:0))

let test_payload_concat () =
  let p = Payload.concat [ Payload.of_string "ab"; Payload.of_string "cd"; Payload.zero 2 ] in
  Alcotest.(check string) "concat" "abcd\000\000" (Payload.to_string p);
  Alcotest.(check int) "len" 6 (Payload.length p)

let test_payload_pattern_deterministic () =
  let a = Payload.pattern ~seed:42L 1000 and b = Payload.pattern ~seed:42L 1000 in
  Alcotest.check payload "equal" a b;
  let c = Payload.pattern ~seed:43L 1000 in
  Alcotest.(check bool) "different" false (Payload.equal a c)

let test_payload_pattern_slicing () =
  (* A slice of a pattern equals the corresponding bytes of the whole. *)
  let whole = Payload.pattern ~seed:7L 100 in
  let slice = Payload.sub whole ~pos:33 ~len:20 in
  let expected = String.sub (Payload.to_string whole) 33 20 in
  Alcotest.(check string) "slice bytes" expected (Payload.to_string slice)

let test_payload_equal_mixed_repr () =
  (* Same content built via different structures compares equal. *)
  let a = Payload.of_string "abcdef" in
  let b = Payload.concat [ Payload.of_string "abc"; Payload.of_string "def" ] in
  Alcotest.check payload "structural vs split" a b

let test_payload_digest_matches_equal () =
  let a = Payload.concat [ Payload.pattern ~seed:3L 100; Payload.zero 50 ] in
  let b =
    Payload.concat
      [ Payload.sub (Payload.pattern ~seed:3L 100) ~pos:0 ~len:60;
        Payload.sub (Payload.pattern ~seed:3L 100) ~pos:60 ~len:40; Payload.zero 50 ]
  in
  Alcotest.(check int64) "digest equal" (Payload.digest a) (Payload.digest b)

let test_payload_digest_zero_closed_form () =
  (* The O(log n) zero digest must agree with the byte-by-byte digest. *)
  let z = Payload.zero 1000 in
  let explicit = Payload.of_bytes (Bytes.make 1000 '\000') in
  Alcotest.(check int64) "closed form" (Payload.digest explicit) (Payload.digest z)

let test_payload_to_string_guard () =
  Alcotest.check_raises "guard" (Invalid_argument "Payload.to_string: payload too large")
    (fun () -> ignore (Payload.to_string (Payload.zero (Size.mib_n 65))))

(* qcheck: random slicing/concatenation preserves content. *)
let prop_payload_slice_concat =
  QCheck.Test.make ~name:"payload: split at any point and reconcat is identity" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 1 200)) (int_range 0 200))
    (fun (s, cut) ->
      QCheck.assume (s <> "");
      let cut = cut mod String.length s in
      let p = Payload.of_string s in
      let left = Payload.sub p ~pos:0 ~len:cut in
      let right = Payload.sub p ~pos:cut ~len:(String.length s - cut) in
      Payload.to_string (Payload.concat [ left; right ]) = s)

let prop_payload_digest_agrees_with_equal =
  QCheck.Test.make ~name:"payload: equal strings have equal digests" ~count:200
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      let pa = Payload.of_string a and pb = Payload.of_string b in
      if a = b then Payload.digest pa = Payload.digest pb && Payload.equal pa pb
      else (not (Payload.equal pa pb)) || a = b)

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list (option (pair (float 0.0) string))))
    "sorted" [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ] order

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.add q ~time:1.0 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order" (List.init 10 Fun.id) order

let test_event_queue_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option (pair (float 0.0) int))) "pop none" None (Event_queue.pop q);
  Alcotest.(check (option (float 0.0))) "peek none" None (Event_queue.peek_time q)

let prop_event_queue_sorted =
  QCheck.Test.make ~name:"event queue: pops are time-sorted" ~count:100
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun time -> Event_queue.add q ~time ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* Schedule policies: the mixed-time workload used by the policy tests —
   three runs of simultaneous events separated by distinct times. *)
let schedule_workload q =
  List.iteri
    (fun i time -> Event_queue.add q ~time (i, time))
    [ 1.0; 1.0; 1.0; 1.0; 0.5; 2.0; 2.0; 2.0; 1.5 ]

let drain q =
  let rec go acc =
    match Event_queue.pop q with None -> List.rev acc | Some (_, v) -> go (v :: acc)
  in
  go []

let pops schedule =
  let q = Event_queue.create ~schedule () in
  schedule_workload q;
  drain q

let test_schedule_fifo_matches_default () =
  (* Fifo is the default, and both are byte-identical to historical
     insertion-order behavior. *)
  let dflt =
    let q = Event_queue.create () in
    schedule_workload q;
    drain q
  in
  Alcotest.(check (list (pair int (float 0.0)))) "fifo = default" dflt (pops Event_queue.Fifo);
  Alcotest.(check (list int)) "insertion order within ties"
    [ 4; 0; 1; 2; 3; 8; 5; 6; 7 ]
    (List.map fst dflt)

let test_schedule_lifo_reverses_ties () =
  Alcotest.(check (list int)) "reverse insertion order within ties"
    [ 4; 3; 2; 1; 0; 8; 7; 6; 5 ]
    (List.map fst (pops Event_queue.Lifo))

let test_schedule_shuffle_permutes_within_ties () =
  (* Any seed: time order is preserved, and each same-time run pops a
     permutation of exactly the events inserted at that time. *)
  List.iter
    (fun seed ->
      let order = pops (Event_queue.Seeded_shuffle seed) in
      Alcotest.(check (list (float 0.0)))
        (Fmt.str "times sorted (seed %d)" seed)
        [ 0.5; 1.0; 1.0; 1.0; 1.0; 1.5; 2.0; 2.0; 2.0 ]
        (List.map snd order);
      let bucket t =
        List.filter_map (fun (i, time) -> if time = t then Some i else None) order
      in
      Alcotest.(check (list int))
        (Fmt.str "t=1.0 run is a permutation (seed %d)" seed)
        [ 0; 1; 2; 3 ]
        (List.sort Int.compare (bucket 1.0));
      Alcotest.(check (list int))
        (Fmt.str "t=2.0 run is a permutation (seed %d)" seed)
        [ 5; 6; 7 ]
        (List.sort Int.compare (bucket 2.0)))
    [ 0; 1; 7; 42; 1337 ]

let test_schedule_shuffle_deterministic () =
  Alcotest.(check (list (pair int (float 0.0))))
    "same seed, same pop order"
    (pops (Event_queue.Seeded_shuffle 7))
    (pops (Event_queue.Seeded_shuffle 7));
  (* Some pair of distinct seeds must disagree — shuffling that never
     shuffles would be vacuous. *)
  let orders = List.map (fun s -> pops (Event_queue.Seeded_shuffle s)) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "distinct seeds can disagree" true
    (List.exists (fun o -> o <> List.hd orders) orders)

let test_schedule_parse_roundtrip () =
  List.iter
    (fun s ->
      match Event_queue.schedule_of_string (Event_queue.schedule_to_string s) with
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
      | Error m -> Alcotest.fail m)
    [ Event_queue.Fifo; Event_queue.Lifo; Event_queue.Seeded_shuffle 503 ];
  Alcotest.(check bool) "garbage rejected" true
    (match Event_queue.schedule_of_string "random" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_time_advances () =
  let e = Engine.create () in
  let log = ref [] in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        log := (Engine.now e, "start") :: !log;
        Engine.sleep e 5.0;
        log := (Engine.now e, "mid") :: !log;
        Engine.sleep e 2.5;
        log := (Engine.now e, "end") :: !log)
  in
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "timeline"
    [ (0.0, "start"); (5.0, "mid"); (7.5, "end") ]
    (List.rev !log)

let test_engine_interleaving_deterministic () =
  let run_once () =
    let e = Engine.create () in
    let log = ref [] in
    let mk name delays =
      ignore
        (Engine.Fiber.spawn e ~name (fun () ->
             List.iter
               (fun d ->
                 Engine.sleep e d;
                 log := Fmt.str "%s@%.1f" name (Engine.now e) :: !log)
               delays))
    in
    mk "a" [ 1.0; 2.0 ];
    mk "b" [ 2.0; 2.0 ];
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list string))
    "expected interleaving"
    [ "a@1.0"; "b@2.0"; "a@3.0"; "b@4.0" ]
    (run_once ());
  Alcotest.(check (list string)) "reproducible" (run_once ()) (run_once ())

let test_engine_fiber_failure_surfaces () =
  let e = Engine.create () in
  let _ = Engine.Fiber.spawn e ~name:"boom" (fun () -> failwith "kaput") in
  Alcotest.check_raises "failure raised"
    (Engine.Fiber_failure ("boom", Failure "kaput"))
    (fun () -> Engine.run e)

let test_engine_run_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        for _ = 1 to 10 do
          Engine.sleep e 1.0;
          incr hits
        done)
  in
  Engine.run_until e 4.5;
  Alcotest.(check int) "partial" 4 !hits;
  check_float "clock at limit" 4.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest" 10 !hits

let test_engine_at_callback () =
  let e = Engine.create () in
  let fired = ref (-1.0) in
  Engine.at e 3.25 (fun () -> fired := Engine.now e);
  Engine.run e;
  check_float "fired at" 3.25 !fired

let test_ivar_basic () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create e in
  let got = ref 0 in
  let _ = Engine.Fiber.spawn e (fun () -> got := Engine.Ivar.read iv) in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Engine.sleep e 2.0;
        Engine.Ivar.fill iv 42)
  in
  Engine.run e;
  Alcotest.(check int) "value" 42 !got

let test_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create e in
  Engine.Ivar.fill iv "x";
  let got = ref "" in
  let _ = Engine.Fiber.spawn e (fun () -> got := Engine.Ivar.read iv) in
  Engine.run e;
  Alcotest.(check string) "value" "x" !got

let test_ivar_double_fill_rejected () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create e in
  Engine.Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Engine.Ivar.fill iv 2)

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create e in
  let sum = ref 0 in
  for _ = 1 to 5 do
    ignore (Engine.Fiber.spawn e (fun () -> sum := !sum + Engine.Ivar.read iv))
  done;
  let _ = Engine.Fiber.spawn e (fun () -> Engine.sleep e 1.0; Engine.Ivar.fill iv 10) in
  Engine.run e;
  Alcotest.(check int) "all woken" 50 !sum

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create e in
  let got = ref [] in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        for _ = 1 to 3 do
          got := Engine.Mailbox.recv mb :: !got
        done)
  in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        List.iter
          (fun v ->
            Engine.sleep e 1.0;
            Engine.Mailbox.send mb v)
          [ 1; 2; 3 ])
  in
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_buffered_before_recv () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create e in
  Engine.Mailbox.send mb "a";
  Engine.Mailbox.send mb "b";
  Alcotest.(check int) "buffered" 2 (Engine.Mailbox.length mb);
  let got = ref [] in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        let first = Engine.Mailbox.recv mb in
        let second = Engine.Mailbox.recv mb in
        got := [ first; second ])
  in
  Engine.run e;
  Alcotest.(check (list string)) "drained" [ "a"; "b" ] !got

let test_semaphore_limits_concurrency () =
  let e = Engine.create () in
  let sem = Engine.Semaphore.create e 2 in
  let active = ref 0 and peak = ref 0 in
  for _ = 1 to 6 do
    ignore
      (Engine.Fiber.spawn e (fun () ->
           Engine.Semaphore.with_held sem (fun () ->
               incr active;
               peak := max !peak !active;
               Engine.sleep e 1.0;
               decr active)))
  done;
  Engine.run e;
  Alcotest.(check int) "peak concurrency" 2 !peak;
  check_float "three waves" 3.0 (Engine.now e)

let test_semaphore_release_on_exception () =
  let e = Engine.create () in
  let sem = Engine.Semaphore.create e 1 in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        (try Engine.Semaphore.with_held sem (fun () -> failwith "die") with
        | Failure _ -> ());
        Engine.Semaphore.with_held sem (fun () -> ()))
  in
  Engine.run e;
  Alcotest.(check int) "token back" 1 (Engine.Semaphore.available sem)

let test_fiber_join () =
  let e = Engine.create () in
  let order = ref [] in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        let child =
          Engine.Fiber.spawn e (fun () ->
              Engine.sleep e 3.0;
              order := "child" :: !order)
        in
        Engine.Fiber.join child;
        order := "parent" :: !order)
  in
  Engine.run e;
  Alcotest.(check (list string)) "join waits" [ "child"; "parent" ] (List.rev !order)

let test_fiber_cancel_blocked () =
  let e = Engine.create () in
  let cancelled_at = ref (-1.0) and reached = ref false in
  let victim =
    Engine.Fiber.spawn e ~name:"victim" (fun () ->
        (try Engine.sleep e 100.0
         with Engine.Cancelled as exn ->
           cancelled_at := Engine.now e;
           raise exn);
        reached := true)
  in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Engine.sleep e 1.0;
        Engine.Fiber.cancel victim)
  in
  Engine.run e;
  check_float "cancelled at 1s, not 100s" 1.0 !cancelled_at;
  Alcotest.(check bool) "body aborted" false !reached;
  Alcotest.(check bool) "finished" true (Engine.Fiber.is_finished victim)

let test_fiber_cancel_before_start () =
  let e = Engine.create () in
  let ran = ref false in
  let f = Engine.Fiber.spawn e (fun () -> ran := true) in
  Engine.Fiber.cancel f;
  Engine.run e;
  Alcotest.(check bool) "never ran" false !ran

let test_fiber_cancel_outcome () =
  let e = Engine.create () in
  let victim = Engine.Fiber.spawn e (fun () -> Engine.sleep e 10.0) in
  let outcome = ref Engine.Fiber.Completed in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Engine.sleep e 1.0;
        Engine.Fiber.cancel victim;
        outcome := Engine.Fiber.await victim)
  in
  Engine.run e;
  Alcotest.(check bool) "cancelled outcome" true (!outcome = Engine.Fiber.Cancelled_outcome)

let test_group_cancel () =
  let e = Engine.create () in
  let group = Engine.Group.create () in
  let survivors = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Engine.Fiber.spawn e ~group (fun () ->
           Engine.sleep e 50.0;
           incr survivors))
  done;
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Engine.sleep e 5.0;
        Engine.Group.cancel e group)
  in
  Engine.run_until e 6.0;
  Alcotest.(check int) "group live after cancel" 0 (Engine.Group.live group);
  Engine.run e;
  Alcotest.(check int) "all killed" 0 !survivors

let test_engine_all_barrier () =
  let e = Engine.create () in
  let finished_at = ref 0.0 in
  let _ =
    Engine.Fiber.spawn e (fun () ->
        Engine.all e
          [ (fun () -> Engine.sleep e 1.0); (fun () -> Engine.sleep e 7.0);
            (fun () -> Engine.sleep e 3.0) ];
        finished_at := Engine.now e)
  in
  Engine.run e;
  check_float "barrier waits for slowest" 7.0 !finished_at

let test_cancelled_semaphore_waiter_does_not_eat_token () =
  let e = Engine.create () in
  let sem = Engine.Semaphore.create e 1 in
  let got_token = ref false in
  let _ =
    Engine.Fiber.spawn e ~name:"holder" (fun () ->
        Engine.Semaphore.with_held sem (fun () -> Engine.sleep e 10.0))
  in
  let waiter =
    Engine.Fiber.spawn e ~name:"waiter" (fun () ->
        Engine.sleep e 1.0;
        Engine.Semaphore.acquire sem)
  in
  let _ =
    Engine.Fiber.spawn e ~name:"late" (fun () ->
        Engine.sleep e 5.0;
        Engine.Fiber.cancel waiter;
        Engine.Semaphore.acquire sem;
        got_token := true)
  in
  Engine.run e;
  Alcotest.(check bool) "token reached late fiber" true !got_token

let test_blocked_fibers_counter () =
  let e = Engine.create () in
  let iv : unit Engine.Ivar.t = Engine.Ivar.create e in
  for _ = 1 to 3 do
    ignore (Engine.Fiber.spawn e (fun () -> Engine.Ivar.read iv))
  done;
  Engine.run e;
  Alcotest.(check int) "blocked" 3 (Engine.blocked_fibers e);
  Alcotest.(check int) "live" 3 (Engine.live_fibers e)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_series () =
  let s = Stats.series "a" in
  Stats.add s ~x:1.0 ~y:10.0;
  Stats.add s ~x:2.0 ~y:20.0;
  Alcotest.(check (option (float 0.0))) "lookup" (Some 20.0) (Stats.y_at s ~x:2.0);
  Alcotest.(check (option (float 0.0))) "missing" None (Stats.y_at s ~x:3.0)

let test_stats_render_table () =
  let a = Stats.series "alpha" and b = Stats.series "beta" in
  Stats.add a ~x:1.0 ~y:1.5;
  Stats.add b ~x:1.0 ~y:2.5;
  Stats.add a ~x:2.0 ~y:3.5;
  let t = Stats.table ~title:"t" ~x_label:"x" ~y_label:"y" [ a; b ] in
  let rendered = Stats.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0 && String.sub rendered 0 2 = "==");
  (* beta has no point at x=2: rendered as "-" *)
  Alcotest.(check bool) "hole marker" true
    (String.split_on_char '\n' rendered |> List.exists (fun l ->
         String.length l > 0
         && String.trim l <> ""
         && String.split_on_char ' ' l |> List.filter (( <> ) "") |> fun cells ->
            cells = [ "2"; "3.50"; "-" ]))

let test_stats_csv () =
  let a = Stats.series "s" in
  Stats.add a ~x:1.0 ~y:2.0;
  let t = Stats.table ~title:"t" ~x_label:"n" ~y_label:"y" [ a ] in
  Alcotest.(check string) "csv" "n,s\n1,2\n" (Stats.to_csv t)

let test_stats_aggregates () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_capture () =
  let e = Engine.create () in
  let (), lines =
    Trace.capture (fun () ->
        let _ =
          Engine.Fiber.spawn e (fun () ->
              Engine.sleep e 1.5;
              Trace.emit e ~component:"unit" "hello %d" 42)
        in
        Engine.run e)
  in
  Alcotest.(check (list string)) "captured" [ "t=1.500000s [unit] hello 42" ] lines;
  Alcotest.(check bool) "sink restored" false (Trace.enabled ())

let test_trace_disabled_is_silent () =
  let e = Engine.create () in
  Trace.emit e ~component:"unit" "not recorded %s" "x";
  Alcotest.(check bool) "disabled" false (Trace.enabled ())

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "simcore"
    [
      ( "size",
        [
          Alcotest.test_case "constants" `Quick test_size_constants;
          Alcotest.test_case "rounding" `Quick test_size_rounding;
          Alcotest.test_case "pretty printing" `Quick test_size_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "byte_at purity" `Quick test_rng_byte_at_pure;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "payload",
        [
          Alcotest.test_case "basics" `Quick test_payload_basics;
          Alcotest.test_case "zero" `Quick test_payload_zero;
          Alcotest.test_case "sub" `Quick test_payload_sub;
          Alcotest.test_case "concat" `Quick test_payload_concat;
          Alcotest.test_case "pattern determinism" `Quick test_payload_pattern_deterministic;
          Alcotest.test_case "pattern slicing" `Quick test_payload_pattern_slicing;
          Alcotest.test_case "mixed representation equality" `Quick test_payload_equal_mixed_repr;
          Alcotest.test_case "digest respects equality" `Quick test_payload_digest_matches_equal;
          Alcotest.test_case "zero digest closed form" `Quick test_payload_digest_zero_closed_form;
          Alcotest.test_case "to_string guard" `Quick test_payload_to_string_guard;
        ]
        @ qsuite [ prop_payload_slice_concat; prop_payload_digest_agrees_with_equal ] );
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_event_queue_order;
          Alcotest.test_case "fifo on ties" `Quick test_event_queue_fifo_ties;
          Alcotest.test_case "empty queue" `Quick test_event_queue_empty;
          Alcotest.test_case "fifo matches default" `Quick test_schedule_fifo_matches_default;
          Alcotest.test_case "lifo reverses ties" `Quick test_schedule_lifo_reverses_ties;
          Alcotest.test_case "shuffle permutes within ties" `Quick
            test_schedule_shuffle_permutes_within_ties;
          Alcotest.test_case "shuffle deterministic per seed" `Quick
            test_schedule_shuffle_deterministic;
          Alcotest.test_case "schedule parse roundtrip" `Quick test_schedule_parse_roundtrip;
        ]
        @ qsuite [ prop_event_queue_sorted ] );
      ( "engine",
        [
          Alcotest.test_case "time advances" `Quick test_engine_time_advances;
          Alcotest.test_case "deterministic interleaving" `Quick
            test_engine_interleaving_deterministic;
          Alcotest.test_case "fiber failure surfaces" `Quick test_engine_fiber_failure_surfaces;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "at callback" `Quick test_engine_at_callback;
          Alcotest.test_case "all barrier" `Quick test_engine_all_barrier;
          Alcotest.test_case "blocked fiber count" `Quick test_blocked_fibers_counter;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "basic" `Quick test_ivar_basic;
          Alcotest.test_case "read after fill" `Quick test_ivar_read_after_fill;
          Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill_rejected;
          Alcotest.test_case "multiple readers" `Quick test_ivar_multiple_readers;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "buffered before recv" `Quick test_mailbox_buffered_before_recv;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "limits concurrency" `Quick test_semaphore_limits_concurrency;
          Alcotest.test_case "release on exception" `Quick test_semaphore_release_on_exception;
          Alcotest.test_case "cancelled waiter keeps token" `Quick
            test_cancelled_semaphore_waiter_does_not_eat_token;
        ] );
      ( "fiber",
        [
          Alcotest.test_case "join" `Quick test_fiber_join;
          Alcotest.test_case "cancel blocked fiber" `Quick test_fiber_cancel_blocked;
          Alcotest.test_case "cancel before start" `Quick test_fiber_cancel_before_start;
          Alcotest.test_case "cancel outcome" `Quick test_fiber_cancel_outcome;
          Alcotest.test_case "group cancel" `Quick test_group_cancel;
        ] );
      ( "stats",
        [
          Alcotest.test_case "series" `Quick test_stats_series;
          Alcotest.test_case "render table" `Quick test_stats_render_table;
          Alcotest.test_case "csv" `Quick test_stats_csv;
          Alcotest.test_case "aggregates" `Quick test_stats_aggregates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "capture" `Quick test_trace_capture;
          Alcotest.test_case "disabled is silent" `Quick test_trace_disabled_is_silent;
        ] );
    ]
