(* Tests for the fault-injection subsystem and the recovery machinery
   built on it: injector determinism, typed transient disk errors and the
   bounded-retry discipline, partial-failure reporting in the coordinated
   protocol, supervised recovery of CM1 under injected faults, and the
   availability sweep. *)

open Simcore
open Storage
open Vmsim
open Blobcr
open Workloads

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

let run engine f =
  let result = ref None in
  let _ = Engine.Fiber.spawn engine ~name:"test-main" (fun () -> result := Some (f ())) in
  while !result = None && Engine.step engine do
    ()
  done;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* Injector: scripts and determinism *)

let profile_script ~seed =
  let engine = Engine.create ~seed () in
  Faults.of_profile
    ~rng:(Rng.split (Engine.rng engine))
    ~mtbf:5.0 ~horizon:60.0 ~hosts:4 ~providers:4 ()

let test_profile_deterministic () =
  let s1 = profile_script ~seed:13 and s2 = profile_script ~seed:13 in
  Alcotest.(check bool) "same seed, same script" true (s1 = s2);
  Alcotest.(check bool) "script non-empty" true (s1 <> [])

let test_profile_respects_horizon () =
  let s = profile_script ~seed:13 in
  List.iter
    (fun (e : Faults.event) ->
      Alcotest.(check bool) "within horizon" true (e.at > 0.0 && e.at <= 60.0))
    s;
  let times = List.map (fun (e : Faults.event) -> e.at) s in
  Alcotest.(check bool) "sorted by time" true (List.sort Float.compare times = times)

let test_profile_weights () =
  let engine = Engine.create ~seed:3 () in
  let s =
    Faults.of_profile
      ~rng:(Rng.split (Engine.rng engine))
      ~mtbf:2.0 ~horizon:60.0 ~hosts:4 ~providers:4 ~weights:(1, 0, 0, 0) ()
  in
  Alcotest.(check bool) "some events" true (List.length s > 5);
  List.iter
    (fun (e : Faults.event) ->
      match e.Faults.action with
      | Faults.Crash_host i -> Alcotest.(check bool) "target in range" true (i >= 0 && i < 4)
      | a -> Alcotest.failf "unexpected action %a with crash-only weights" Faults.pp_action a)
    s

let applied_timeline ~seed =
  let engine = Engine.create ~seed () in
  let script = profile_script ~seed in
  run engine (fun () ->
      let inj = Faults.start engine ~script ~handlers:Faults.null_handlers in
      Engine.sleep engine 100.0;
      Faults.stop inj;
      Faults.applied inj)

let test_injector_replay_deterministic () =
  let t1 = applied_timeline ~seed:7 and t2 = applied_timeline ~seed:7 in
  Alcotest.(check bool) "non-empty" true (t1 <> []);
  Alcotest.(check bool) "identical applied timeline" true (t1 = t2)

let test_injector_stop_drops_pending () =
  let engine = Engine.create () in
  let hits = ref 0 in
  let handlers = { Faults.null_handlers with crash_host = (fun _ -> incr hits) } in
  let applied =
    run engine (fun () ->
        let script =
          [
            { Faults.at = 1.0; action = Faults.Crash_host 0 };
            { Faults.at = 50.0; action = Faults.Crash_host 1 };
          ]
        in
        let inj = Faults.start engine ~script ~handlers in
        Engine.sleep engine 5.0;
        Faults.stop inj;
        Engine.sleep engine 100.0;
        Faults.applied inj)
  in
  Alcotest.(check int) "only the first event fired" 1 !hits;
  Alcotest.(check int) "applied reflects it" 1 (List.length applied)

(* ------------------------------------------------------------------ *)
(* Typed disk faults and bounded retry *)

let test_disk_full_typed () =
  let engine = Engine.create () in
  let disk = Disk.create engine ~capacity:1000 ~name:"d0" () in
  let caught =
    run engine (fun () ->
        Disk.write disk 800;
        try
          Disk.write disk 300;
          None
        with Disk.Full { disk = name; need; capacity } -> Some (name, need, capacity))
  in
  Alcotest.(check (option (triple string int int)))
    "typed overflow" (Some ("d0", 1100, 1000)) caught

let test_transient_disk_retries_absorb () =
  let engine = Engine.create () in
  let disk = Disk.create engine ~capacity:10_000 ~name:"d0" () in
  let value =
    run engine (fun () ->
        Disk.inject_transient disk ~ops:2;
        Faults.with_retries engine ~label:"read" (fun () ->
            Disk.read disk 100;
            "ok"))
  in
  Alcotest.(check string) "succeeded after retries" "ok" value;
  Alcotest.(check int) "faults consumed" 0 (Disk.armed_faults disk)

let test_transient_disk_retries_exhaust () =
  let engine = Engine.create () in
  let disk = Disk.create engine ~capacity:10_000 ~name:"d0" () in
  let raised =
    run engine (fun () ->
        Disk.inject_transient disk ~ops:10;
        try
          Faults.with_retries engine ~retries:2 ~label:"read" (fun () -> Disk.read disk 100);
          false
        with Faults.Injected_error _ -> true)
  in
  Alcotest.(check bool) "typed error escapes after budget" true raised;
  (* 1 initial attempt + 2 retries consumed exactly 3 armed faults. *)
  Alcotest.(check int) "three attempts consumed" 7 (Disk.armed_faults disk)

let quick = Calibration.quick_test
let build () = Cluster.build ~seed:7 quick

let test_ckpt_proxy_retries_transients () =
  let cluster = build () in
  let value, retries =
    Cluster.run cluster (fun () ->
        let inst =
          Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"vm0"
        in
        let fails = ref 2 in
        let value =
          Ckpt_proxy.request_checkpoint inst.Approach.proxy ~vm:inst.Approach.vm
            ~snapshot:(fun () ->
              if !fails > 0 then begin
                decr fails;
                raise (Faults.Injected_error "synthetic snapshot fault")
              end
              else 42)
        in
        (value, Ckpt_proxy.transient_retries inst.Approach.proxy))
  in
  Alcotest.(check int) "snapshot value" 42 value;
  Alcotest.(check int) "two transient retries" 2 retries

(* ------------------------------------------------------------------ *)
(* Protocol: typed partial failure *)

let deploy_pair cluster =
  [
    Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 0) ~id:"a";
    Approach.deploy cluster Approach.Blobcr ~node:(Cluster.node cluster 1) ~id:"b";
  ]

let test_protocol_partial_dump_failure () =
  let cluster = build () in
  let partial =
    Cluster.run cluster (fun () ->
        let insts = deploy_pair cluster in
        let dump (inst : Approach.instance) =
          if inst.Approach.id = "b" then raise (Faults.Injected_error "dump blew up")
        in
        match Protocol.global_checkpoint cluster ~instances:insts ~dump with
        | Ok _ -> None
        | Error p -> Some p)
  in
  match partial with
  | None -> Alcotest.fail "expected a partial failure"
  | Some p ->
      Alcotest.(check int) "one branch completed" 1 (List.length p.Protocol.completed);
      Alcotest.(check int) "surviving branch index" 0 (fst (List.hd p.Protocol.completed));
      (match p.Protocol.failed with
      | [ e ] ->
          Alcotest.(check int) "failed index" 1 e.Protocol.index;
          Alcotest.(check string) "failed label" "b" e.Protocol.label;
          Alcotest.(check string) "failed stage" "dump" e.Protocol.stage;
          Alcotest.(check bool) "typed error" true
            (match e.Protocol.error with Faults.Injected_error _ -> true | _ -> false)
      | _ -> Alcotest.fail "expected exactly one failed branch")

let test_protocol_partial_snapshot_stage_on_death () =
  (* A VM fail-stopping between the dump and the disk snapshot used to
     crash the protocol on [Option.get]; now it surfaces as a typed
     snapshot-stage branch error the supervisor can retry. *)
  let cluster = build () in
  let partial =
    Cluster.run cluster (fun () ->
        let insts = deploy_pair cluster in
        let dump (inst : Approach.instance) =
          if inst.Approach.id = "b" then Vm.kill inst.Approach.vm
        in
        match Protocol.global_checkpoint cluster ~instances:insts ~dump with
        | Ok _ -> None
        | Error p -> Some p)
  in
  match partial with
  | None -> Alcotest.fail "expected a partial failure"
  | Some p -> (
      Alcotest.(check int) "one branch completed" 1 (List.length p.Protocol.completed);
      match p.Protocol.failed with
      | [ e ] ->
          Alcotest.(check string) "snapshot stage" "snapshot" e.Protocol.stage;
          Alcotest.(check string) "dead branch" "b" e.Protocol.label
      | _ -> Alcotest.fail "expected exactly one failed branch")

let test_protocol_partial_restart () =
  let cluster = build () in
  let partial =
    Cluster.run cluster (fun () ->
        let insts = deploy_pair cluster in
        let snaps = List.map (Approach.request_checkpoint cluster) insts in
        Protocol.kill_all insts;
        let plan =
          List.map2
            (fun (inst : Approach.instance) snap ->
              let node_index = if inst.Approach.id = "a" then 2 else 3 in
              (Cluster.node cluster node_index, inst.Approach.id ^ ".r", snap))
            insts snaps
        in
        let restore (inst : Approach.instance) =
          if inst.Approach.id = "b.r" then raise (Faults.Injected_error "restore blew up")
        in
        match Protocol.global_restart cluster ~plan ~restore with
        | Ok _ -> None
        | Error p ->
            (* Clean up the instances that did come up. *)
            List.iter (fun (_, inst) -> Approach.kill inst) p.Protocol.completed;
            Some p)
  in
  match partial with
  | None -> Alcotest.fail "expected a partial failure"
  | Some p -> (
      Alcotest.(check int) "one branch completed" 1 (List.length p.Protocol.completed);
      match p.Protocol.failed with
      | [ e ] ->
          Alcotest.(check string) "restore stage" "restore" e.Protocol.stage;
          Alcotest.(check string) "failed label" "b.r" e.Protocol.label
      | _ -> Alcotest.fail "expected exactly one failed branch")

let test_protocol_exn_wrapper () =
  let cluster = build () in
  let raised =
    Cluster.run cluster (fun () ->
        let insts = deploy_pair cluster in
        let dump (inst : Approach.instance) =
          if inst.Approach.id = "a" then raise (Faults.Injected_error "boom")
        in
        try
          ignore (Protocol.global_checkpoint_exn cluster ~instances:insts ~dump);
          false
        with Protocol.Partial_failure msg ->
          let contains msg sub =
            let n = String.length sub in
            let rec scan i =
              i + n <= String.length msg && (String.sub msg i n = sub || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "message names the stage" true (contains msg "dump");
          true)
  in
  Alcotest.(check bool) "typed partial failure" true raised

(* ------------------------------------------------------------------ *)
(* Supervised chaos: CM1 recovers from a crash + provider loss, and the
   recovered final state is byte-identical to a failure-free run. *)

let chaos_config =
  {
    Cm1.default_config with
    procs_per_vm = 2;
    subdomain_state_bytes = Size.mib_n 1;
    compute_per_iteration = 2.0;
    summary_every = 2;
  }

let chaos_script =
  [
    { Faults.at = 18.0; action = Faults.Crash_host 0 };
    { Faults.at = 19.2; action = Faults.Fail_provider 2 };
  ]

(* Digests of every dumped subdomain file across the final gang, keyed by
   path: the restart-visible application state. *)
let final_subdomain_digests sup =
  List.concat_map
    (fun (inst : Approach.instance) ->
      let fs = Vm.fs inst.Approach.vm in
      List.filter_map
        (fun path ->
          if String.starts_with ~prefix:"/ckpt/cm1/" path then
            Some (path, Payload.digest (Guest_fs.read_file fs ~path))
          else None)
        (Guest_fs.list_files fs))
    (Supervisor.instances sup)
  |> List.sort compare

let run_supervised ~script () =
  let cal =
    {
      quick with
      Calibration.blobseer = { quick.Calibration.blobseer with Blobseer.Types.replication = 2 };
    }
  in
  let cluster = Cluster.build cal in
  Cluster.run cluster (fun () ->
      let workload = Cm1.supervised_workload cluster chaos_config ~iters_per_unit:1 in
      let sup = ref None in
      let injector = ref None in
      let report =
        Supervisor.run cluster ~kind:Approach.Blobcr
          ~policy:{ Supervisor.default_policy with checkpoint_interval = 4 }
          ~on_ready:(fun s ->
            sup := Some s;
            if script <> [] then
              injector :=
                Some
                  (Faults.start cluster.Cluster.engine ~script
                     ~handlers:(Supervisor.fault_handlers s)))
          ~id:"cm1" ~gang:2 ~units:12 ~workload ()
      in
      (match !injector with Some inj -> Faults.stop inj | None -> ());
      let sup = Option.get !sup in
      (report, final_subdomain_digests sup, Supervisor.audit sup))

let test_chaos_recovery_end_to_end () =
  let report, digests, audit = run_supervised ~script:chaos_script () in
  Alcotest.(check bool) "finished" true report.Supervisor.finished;
  Alcotest.(check int) "all units" 12 report.Supervisor.units_completed;
  Alcotest.(check int) "one recovery" 1 report.Supervisor.recoveries;
  Alcotest.(check bool) "non-zero wasted work" true (report.Supervisor.wasted_time > 0.0);
  Alcotest.(check int) "one latency sample" 1 (List.length report.Supervisor.recovery_latencies);
  Alcotest.(check (list string)) "supervisor invariants clean" [] audit;
  Alcotest.(check int) "all subdomains dumped" 4 (List.length digests);
  (* The recovered run's final application state matches a failure-free
     run byte for byte: rollback re-executed exactly the lost units. *)
  let clean_report, clean_digests, clean_audit = run_supervised ~script:[] () in
  Alcotest.(check bool) "clean run finished" true clean_report.Supervisor.finished;
  Alcotest.(check int) "clean run recoveries" 0 clean_report.Supervisor.recoveries;
  Alcotest.(check (list string)) "clean supervisor invariants" [] clean_audit;
  Alcotest.(check bool) "final state byte-identical to failure-free run" true
    (List.map snd digests = List.map snd clean_digests)

let test_chaos_recovery_replay_deterministic () =
  let capture () =
    let (report, digests, _), trace = Trace.capture (fun () -> run_supervised ~script:chaos_script ()) in
    ( (report.Supervisor.units_completed, report.Supervisor.recoveries,
       report.Supervisor.checkpoints, report.Supervisor.wasted_time),
      digests, trace )
  in
  let summary1, digests1, trace1 = capture () in
  let summary2, digests2, trace2 = capture () in
  Alcotest.(check bool) "same summary" true (summary1 = summary2);
  Alcotest.(check bool) "same final state" true (digests1 = digests2);
  Alcotest.(check bool) "same trace" true (trace1 = trace2)

(* ------------------------------------------------------------------ *)
(* Durability acceptance: a crash injected mid-COMMIT plus one silently
   corrupted replica; the supervised restart must restore byte-identical
   application state via journal recovery, checksum failover and scrub
   repair — deterministically under a fixed seed. *)

let durability_scale = { Experiments.Scale.quick with Experiments.Scale.seed = 42 }

let test_durability_chaos_acceptance () =
  let chaos = Experiments.Durability.chaos_run durability_scale () in
  let report = chaos.Experiments.Durability.report in
  Alcotest.(check bool) "finished" true report.Supervisor.finished;
  Alcotest.(check bool) "recovered at least once" true (report.Supervisor.recoveries >= 1);
  let journal_intents =
    List.fold_left
      (fun acc -> function
        | Supervisor.Journal_recovered { intents; _ } -> acc + intents
        | _ -> acc)
      0 report.Supervisor.events
  in
  Alcotest.(check bool) "journal recovery rolled back a pending intent" true
    (journal_intents >= 1);
  Alcotest.(check bool) "scrubber repaired corrupted or lost replicas" true
    (chaos.Experiments.Durability.scrub_stats.Blobseer.Scrubber.repairs > 0);
  Alcotest.(check (list string)) "supervisor invariants clean" []
    chaos.Experiments.Durability.audit;
  (* Byte-identical to a fault-free run of the same workload: recovery
     re-executed exactly the lost units on exactly the rolled-back state. *)
  let clean = Experiments.Durability.chaos_run durability_scale ~script:(fun _ -> []) () in
  Alcotest.(check bool) "clean run finished" true
    clean.Experiments.Durability.report.Supervisor.finished;
  Alcotest.(check bool) "final state byte-identical to fault-free run" true
    (List.map snd chaos.Experiments.Durability.digests
    = List.map snd clean.Experiments.Durability.digests)

let test_durability_chaos_replay_deterministic () =
  let capture () =
    let chaos, trace =
      Trace.capture (fun () -> Experiments.Durability.chaos_run durability_scale ())
    in
    ( Experiments.Durability.render_scrub_log chaos,
      List.map snd chaos.Experiments.Durability.digests,
      trace )
  in
  let log1, digests1, trace1 = capture () in
  let log2, digests2, trace2 = capture () in
  Alcotest.(check string) "same scrub/repair log" log1 log2;
  Alcotest.(check bool) "same final state" true (digests1 = digests2);
  Alcotest.(check bool) "same trace" true (trace1 = trace2)

(* ------------------------------------------------------------------ *)
(* Availability sweep smoke *)

let test_availability_smoke () =
  let scale =
    {
      (Option.get (Experiments.Scale.find "quick")) with
      Experiments.Scale.availability_mtbfs = [ 12.0 ];
      availability_intervals = [ 2 ];
    }
  in
  let points = Experiments.Availability.sweep scale () in
  Alcotest.(check int) "one cell per kind" 2 (List.length points);
  List.iter
    (fun (p : Experiments.Availability.point) ->
      Alcotest.(check bool) "utilization in (0, 1]" true
        (p.Experiments.Availability.utilization > 0.0 && p.utilization <= 1.0);
      Alcotest.(check bool) "faults caused recoveries" true (p.recoveries > 0);
      Alcotest.(check bool) "wasted work recorded" true (p.wasted > 0.0))
    points

let () =
  Alcotest.run "faults"
    [
      ( "injector",
        [
          Alcotest.test_case "profile deterministic" `Quick test_profile_deterministic;
          Alcotest.test_case "profile respects horizon" `Quick test_profile_respects_horizon;
          Alcotest.test_case "profile weights" `Quick test_profile_weights;
          Alcotest.test_case "replay deterministic" `Quick test_injector_replay_deterministic;
          Alcotest.test_case "stop drops pending" `Quick test_injector_stop_drops_pending;
        ] );
      ( "transients",
        [
          Alcotest.test_case "disk full is typed" `Quick test_disk_full_typed;
          Alcotest.test_case "retries absorb transients" `Quick
            test_transient_disk_retries_absorb;
          Alcotest.test_case "retries exhaust to typed error" `Quick
            test_transient_disk_retries_exhaust;
          Alcotest.test_case "ckpt proxy retries transients" `Quick
            test_ckpt_proxy_retries_transients;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "partial dump failure" `Quick test_protocol_partial_dump_failure;
          Alcotest.test_case "snapshot stage on mid-barrier death" `Quick
            test_protocol_partial_snapshot_stage_on_death;
          Alcotest.test_case "partial restart" `Quick test_protocol_partial_restart;
          Alcotest.test_case "exn wrapper" `Quick test_protocol_exn_wrapper;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "chaos recovery end to end" `Quick test_chaos_recovery_end_to_end;
          Alcotest.test_case "durability chaos acceptance" `Quick
            test_durability_chaos_acceptance;
          Alcotest.test_case "durability replay deterministic" `Quick
            test_durability_chaos_replay_deterministic;
          Alcotest.test_case "chaos replay deterministic" `Quick
            test_chaos_recovery_replay_deterministic;
        ] );
      ( "availability",
        [ Alcotest.test_case "sweep smoke" `Quick test_availability_smoke ] );
    ]
