(* Tests for the message-passing simulator and VM-level pieces it relies
   on: point-to-point matching, barriers, drain protocol, suspension
   interplay, and BLCR dump/restore mechanics. *)

open Simcore
open Netsim
open Vmsim
open Mpisim

let quick_boot =
  {
    Vm.boot_read_bytes = Size.mib;
    boot_read_chunk = Size.mib;
    boot_cpu_time = 0.1;
    boot_jitter = 0.0;
    noise_files = 1;
    noise_file_bytes = 1024;
    scattered_touches = 2;
    touch_bytes = 4096;
  }

let mk_world ?(vms = 2) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-3 } in
  let machines =
    List.init vms (fun i ->
        let host = Net.add_host net ~name:(Fmt.str "m%d" i) in
        let dev = Vdisk.Block_dev.in_memory ~capacity:(Size.mib_n 32) in
        Vm.create engine ~host ~device:dev ~boot:quick_boot ~name:(Fmt.str "vm%d" i) ())
  in
  (engine, net, machines)

let run engine f =
  let result = ref None in
  let _ = Engine.Fiber.spawn engine (fun () -> result := Some (f ())) in
  (* Stop once the driver finishes: booted VMs keep daemon fibers (OS
     loggers) alive, so the event queue never drains on its own. *)
  while !result = None && Engine.step engine do
    ()
  done;
  Option.get !result

let boot_all engine vms =
  run engine (fun () ->
      Engine.all engine (List.map (fun vm () -> Vm.boot vm ~format_fs:true) vms))

let test_send_recv_matching () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let got = ref [] in
  let _ =
    run engine (fun () ->
        let a = Comm.attach comm ~rank:0 ~vm:(List.nth vms 0) in
        let b = Comm.attach comm ~rank:1 ~vm:(List.nth vms 1) in
        Engine.all engine
          [
            (fun () ->
              Comm.send a ~dst:1 ~bytes:1000;
              Comm.send a ~dst:1 ~bytes:2000);
            (fun () ->
              let first = Comm.recv b ~src:0 in
              let second = Comm.recv b ~src:0 in
              got := [ first; second ]);
          ])
  in
  Alcotest.(check (list int)) "fifo per channel" [ 1000; 2000 ] !got

let test_send_takes_network_time () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let elapsed =
    run engine (fun () ->
        let a = Comm.attach comm ~rank:0 ~vm:(List.nth vms 0) in
        let _b = Comm.attach comm ~rank:1 ~vm:(List.nth vms 1) in
        let t0 = Engine.now engine in
        Comm.send a ~dst:1 ~bytes:(Size.mib_n 100);
        Engine.now engine -. t0)
  in
  (* 100 MiB at 117.5 MiB/s ≈ 0.85 s. *)
  Alcotest.(check bool) (Fmt.str "%.2fs plausible" elapsed) true
    (elapsed > 0.8 && elapsed < 1.2)

let test_barrier_synchronizes () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let times = ref [] in
  let _ =
    run engine (fun () ->
        let a = Comm.attach comm ~rank:0 ~vm:(List.nth vms 0) in
        let b = Comm.attach comm ~rank:1 ~vm:(List.nth vms 1) in
        Engine.all engine
          [
            (fun () ->
              Comm.barrier a;
              times := ("a", Engine.now engine) :: !times);
            (fun () ->
              Engine.sleep engine 5.0;
              Comm.barrier b;
              times := ("b", Engine.now engine) :: !times);
          ])
  in
  List.iter
    (fun (_, t) -> Alcotest.(check bool) "released after slowest" true (t >= 5.0))
    !times

let test_drain_channels_quiesces () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let ok =
    run engine (fun () ->
        let a = Comm.attach comm ~rank:0 ~vm:(List.nth vms 0) in
        let b = Comm.attach comm ~rank:1 ~vm:(List.nth vms 1) in
        Engine.all engine
          [
            (fun () ->
              Comm.send a ~dst:1 ~bytes:5000;
              Comm.drain_channels a);
            (fun () ->
              ignore (Comm.recv b ~src:0);
              Comm.drain_channels b);
          ];
        Comm.in_flight comm = 0)
  in
  Alcotest.(check bool) "quiescent" true ok

let test_send_during_drain_rejected () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let raised =
    run engine (fun () ->
        let a = Comm.attach comm ~rank:0 ~vm:(List.nth vms 0) in
        let b = Comm.attach comm ~rank:1 ~vm:(List.nth vms 1) in
        let result = ref false in
        Engine.all engine
          [
            (fun () ->
              (* Start draining, then illegally try to send. *)
              ignore b;
              let fiber =
                Engine.Fiber.spawn engine (fun () -> Comm.drain_channels a)
              in
              Engine.yield engine;
              (try Comm.send a ~dst:1 ~bytes:1 with Comm.Draining -> result := true);
              Comm.drain_channels b;
              Engine.Fiber.join fiber);
          ];
        !result)
  in
  Alcotest.(check bool) "send rejected" true raised

let test_attach_validations () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let _ = Comm.attach comm ~rank:0 ~vm:(List.nth vms 0) in
  Alcotest.check_raises "double attach" (Invalid_argument "Comm.attach: rank already attached")
    (fun () -> ignore (Comm.attach comm ~rank:0 ~vm:(List.nth vms 1)));
  Alcotest.check_raises "bad rank" (Invalid_argument "Comm.attach: rank out of range")
    (fun () -> ignore (Comm.attach comm ~rank:7 ~vm:(List.nth vms 1)))

let test_allreduce_completes () =
  let engine, net, vms = mk_world () in
  let comm = Comm.create engine net ~size:2 in
  let done_ = ref 0 in
  let _ =
    run engine (fun () ->
        let eps =
          List.mapi (fun rank vm -> Comm.attach comm ~rank ~vm) vms
        in
        Engine.all engine
          (List.map (fun ep () -> Comm.allreduce ep ~bytes:4096; incr done_) eps))
  in
  Alcotest.(check int) "all ranks" 2 !done_

(* ------------------------------------------------------------------ *)
(* Vm + Blcr *)

let test_vm_boot_and_fs () =
  let engine, _net, vms = mk_world ~vms:1 () in
  boot_all engine vms;
  let vm = List.hd vms in
  Alcotest.(check bool) "running" true (Vm.state vm = Vm.Running);
  Alcotest.(check bool) "fs mounted" true (Guest_fs.list_files (Vm.fs vm) <> [])

let test_blcr_dump_restore_roundtrip () =
  let engine, _net, vms = mk_world ~vms:1 () in
  boot_all engine vms;
  let vm = List.hd vms in
  let restored =
    run engine (fun () ->
        ignore (Vm.register_process vm ~name:"solver" ~mem:(Size.mib_n 2));
        ignore (Vm.register_process vm ~name:"helper" ~mem:(Size.mib_n 1));
        let dumped = Blcr.dump vm in
        (* A second VM mounting the same device restores both dumps. *)
        let vm2 =
          Vm.create engine ~host:(Vm.host vm) ~device:(Vm.device vm) ~name:"vm-restore" ()
        in
        Vm.restore_running vm2;
        let restored = Blcr.restore vm2 in
        (dumped, restored, List.map Process.name (Vm.processes vm2)))
  in
  let dumped, got, names = restored in
  Alcotest.(check int) "bytes match" dumped got;
  Alcotest.(check (list string)) "processes" [ "helper"; "solver" ] (List.sort compare names)

let test_blcr_successive_dumps_new_files () =
  let engine, _net, vms = mk_world ~vms:1 () in
  boot_all engine vms;
  let vm = List.hd vms in
  let files =
    run engine (fun () ->
        ignore (Vm.register_process vm ~name:"p" ~mem:(Size.mib_n 1));
        ignore (Blcr.dump vm);
        ignore (Blcr.dump vm);
        List.filter
          (fun f -> String.length f > 5 && String.sub f 0 5 = "/ckpt")
          (Guest_fs.list_files (Vm.fs vm)))
  in
  Alcotest.(check int) "two context files" 2 (List.length files)

let test_ram_state_accounting () =
  let engine, _net, vms = mk_world ~vms:1 () in
  boot_all engine vms;
  let vm = List.hd vms in
  ignore engine;
  let base = Vm.ram_state_bytes vm in
  ignore (Vm.register_process vm ~name:"big" ~mem:(Size.mib_n 64));
  Alcotest.(check int) "process memory counted" (base + Size.mib_n 64) (Vm.ram_state_bytes vm)

let () =
  Alcotest.run "mpisim_vmsim"
    [
      ( "comm",
        [
          Alcotest.test_case "send/recv matching" `Quick test_send_recv_matching;
          Alcotest.test_case "send takes network time" `Quick test_send_takes_network_time;
          Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
          Alcotest.test_case "drain quiesces" `Quick test_drain_channels_quiesces;
          Alcotest.test_case "send during drain rejected" `Quick test_send_during_drain_rejected;
          Alcotest.test_case "attach validations" `Quick test_attach_validations;
          Alcotest.test_case "allreduce completes" `Quick test_allreduce_completes;
        ] );
      ( "vm_blcr",
        [
          Alcotest.test_case "boot and fs" `Quick test_vm_boot_and_fs;
          Alcotest.test_case "blcr dump/restore roundtrip" `Quick
            test_blcr_dump_restore_roundtrip;
          Alcotest.test_case "successive dumps are new files" `Quick
            test_blcr_successive_dumps_new_files;
          Alcotest.test_case "ram state accounting" `Quick test_ram_state_accounting;
        ] );
    ]
