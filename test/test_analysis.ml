(* Tests for the analysis subsystem: the source lint rules (positive and
   pragma-suppressed cases), the runtime invariant auditors (each must
   catch a seeded defect), and the replay-divergence checker. *)

open Simcore
open Netsim
open Storage
open Blobseer
open Vdisk
open Analysis

(* ------------------------------------------------------------------ *)
(* Lint: rule positives, forgiveness and pragmas *)

let rules findings = List.map (fun f -> f.Lint.rule) findings

let scan src = Lint.scan_source ~file:"fixture.ml" src

let test_lint_hashtbl_order () =
  Alcotest.(check (list string)) "unsorted fold flagged" [ "hashtbl-order" ]
    (rules (scan "let xs = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"));
  Alcotest.(check (list string)) "sort within window forgiven" []
    (rules
       (scan
          "let xs = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
           let xs = List.sort compare xs\n"));
  Alcotest.(check (list string)) "same-line pragma suppresses" []
    (rules
       (scan
          "let n = Hashtbl.fold (fun _ v a -> a + v) tbl 0 (* lint: allow \
           hashtbl-order — sum *)\n"));
  Alcotest.(check (list string)) "preceding-line pragma suppresses" []
    (rules
       (scan
          "(* lint: allow hashtbl-order — sum *)\n\
           let n = Hashtbl.fold (fun _ v a -> a + v) tbl 0\n"));
  Alcotest.(check (list string)) "pragma for another rule does not" [ "hashtbl-order" ]
    (rules
       (scan
          "let n = Hashtbl.fold (fun _ v a -> a + v) tbl 0 (* lint: allow \
           wall-clock *)\n"))

let test_lint_ambient_effects () =
  Alcotest.(check (list string)) "ambient Random flagged" [ "ambient-random" ]
    (rules (scan "let r = Random.int 6\n"));
  Alcotest.(check (list string)) "wall clock flagged" [ "wall-clock" ]
    (rules (scan "let t = Unix.gettimeofday ()\n"));
  Alcotest.(check (list string)) "Obj.magic flagged" [ "obj-magic" ]
    (rules (scan "let x = Obj.magic y\n"))

let test_lint_strings_and_comments_inert () =
  Alcotest.(check (list string)) "needle inside a string literal" []
    (rules (scan "let s = \"Hashtbl.iter is risky\"\n"));
  Alcotest.(check (list string)) "needle inside a comment" []
    (rules (scan "(* avoid Random.int in simulations *)\nlet x = 1\n"));
  Alcotest.(check (list string)) "needle inside a quoted string" []
    (rules (scan "let s = {q|Unix.gettimeofday|q}\n"))

let test_lint_poly_compare () =
  Alcotest.(check (list string)) "bare compare near floats" [ "poly-compare" ]
    (rules (scan "let f (x : float) = x\nlet c a b = compare a b\n"));
  Alcotest.(check (list string)) "Float.compare accepted" []
    (rules (scan "let f (x : float) = x\nlet c a b = Float.compare a b\n"));
  Alcotest.(check (list string)) "bare compare without floats accepted" []
    (rules (scan "let c a b = compare a b\n"))

let test_lint_missing_mli () =
  Alcotest.(check (list string)) "ml without mli flagged" [ "missing-mli" ]
    (rules (Lint.missing_mli ~dir:"lib/x" ~ml:[ "foo.ml" ] ~mli:[]));
  Alcotest.(check (list string)) "ml with mli accepted" []
    (rules (Lint.missing_mli ~dir:"lib/x" ~ml:[ "foo.ml" ] ~mli:[ "foo.mli" ]))

(* ------------------------------------------------------------------ *)
(* Invariants: each auditor catches a seeded defect *)

type rig = {
  engine : Engine.t;
  service : Client.t;
  nodes : (Net.host * Disk.t) array;
}

let make_rig ?(stripe = 256) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let meta = [ Net.add_host net ~name:"meta0" ] in
  let nodes =
    Array.init 3 (fun i ->
        ( Net.add_host net ~name:(Fmt.str "node%d" i),
          Disk.create engine ~name:(Fmt.str "nodedisk%d" i) () ))
  in
  let service =
    Client.deploy engine net
      ~params:{ Types.default_params with stripe_size = stripe }
      ~version_manager_host:vm_host ~provider_manager_host:pm_host
      ~metadata_hosts:meta ~data_providers:(Array.to_list nodes) ()
  in
  { engine; service; nodes }

let run rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

(* Tests that seed corruption and audit by hand must not also trip the
   teardown audit (armed suite-wide via BLOBCR_AUDIT=1 in test/dune). *)
let without_teardown_audits f =
  let was = Engine.audits_enabled () in
  Engine.set_audits_enabled false;
  Fun.protect ~finally:(fun () -> Engine.set_audits_enabled was) f

let make_qcow2 rig =
  let host, disk = rig.nodes.(0) in
  let q =
    Qcow2.create rig.engine ~host ~local_disk:disk ~cluster_size:256 ~capacity:4096
      ~backing:Qcow2.No_backing ~name:"q" ()
  in
  Qcow2.write q ~offset:0 (Payload.of_string (String.make 512 'a'));
  Qcow2.savevm q ~snapshot_name:"s1" ~vm_state:(Payload.of_string "vm");
  Qcow2.write q ~offset:0 (Payload.of_string (String.make 256 'b'));
  q

let test_qcow2_audit_catches_refcount_corruption () =
  without_teardown_audits @@ fun () ->
  let rig = make_rig () in
  let clean, corrupted =
    run rig (fun () ->
        let q = make_qcow2 rig in
        let clean = Invariants.audit_qcow2 q in
        Qcow2.unsafe_set_refcount q ~phys:0 7;
        (clean, Invariants.audit_qcow2 q))
  in
  Alcotest.(check int) "clean image audits clean" 0 (List.length clean);
  Alcotest.(check bool) "corrupted refcount caught" true
    (List.exists (fun v -> v.Invariants.invariant = "refcount") corrupted)

let test_engine_teardown_audit () =
  let was = Engine.audits_enabled () in
  Fun.protect
    ~finally:(fun () -> Engine.set_audits_enabled was)
    (fun () ->
      Engine.set_audits_enabled true;
      let rig = make_rig () in
      let _ =
        Engine.Fiber.spawn rig.engine (fun () ->
            let q = make_qcow2 rig in
            Qcow2.unsafe_set_refcount q ~phys:0 7)
      in
      match Engine.run rig.engine with
      | () -> Alcotest.fail "expected Audit_failure at teardown"
      | exception Engine.Audit_failure _ -> ())

let test_mirror_audit_catches_uncached_dirty () =
  without_teardown_audits @@ fun () ->
  let rig = make_rig () in
  let clean, corrupted =
    run rig (fun () ->
        let host, disk = rig.nodes.(1) in
        let client_host, _ = rig.nodes.(0) in
        let base =
          Client.create_blob rig.service ~from:client_host ~capacity:2048
        in
        let v =
          Client.write base ~from:client_host ~offset:0
            (Payload.of_string (String.make 2048 'Z'))
        in
        let m =
          Mirror.create rig.engine ~host ~local_disk:disk ~base ~base_version:v
            ~name:"m" ()
        in
        Mirror.write m ~offset:0 (Payload.of_string (String.make 256 'w'));
        let clean = Invariants.audit_mirror m in
        Mirror.unsafe_mark_dirty m ~chunk:7;
        (clean, Invariants.audit_mirror m))
  in
  Alcotest.(check int) "clean mirror audits clean" 0 (List.length clean);
  Alcotest.(check bool) "dirty-not-present caught" true
    (List.exists (fun v -> v.Invariants.invariant = "dirty-subset-present") corrupted)

let test_version_manager_audit_catches_version_hole () =
  without_teardown_audits @@ fun () ->
  let rig = make_rig () in
  let clean, holed =
    run rig (fun () ->
        let client_host, _ = rig.nodes.(0) in
        let blob = Client.create_blob rig.service ~from:client_host ~capacity:1024 in
        let write c =
          ignore
            (Client.write blob ~from:client_host ~offset:0
               (Payload.of_string (String.make 1024 c)))
        in
        write 'a';
        write 'b';
        write 'c';
        let vm = Client.version_manager rig.service in
        let clean = Invariants.audit_version_manager vm in
        (* Retention punches accounted holes: a dropped middle version is
           recorded as retired and the union check stays clean. *)
        Version_manager.drop_version vm ~blob:(Client.blob_id blob) ~version:2;
        let retained = Invariants.audit_version_manager vm in
        (* A version in neither the live nor the retired set was lost, not
           retired — the seeded defect the audit must catch. *)
        Version_manager.unsafe_forget_version vm ~blob:(Client.blob_id blob) ~version:1;
        (clean @ retained, Invariants.audit_version_manager vm))
  in
  Alcotest.(check int) "live and retention-holed manager audit clean" 0 (List.length clean);
  Alcotest.(check bool) "version hole caught" true
    (List.exists (fun v -> v.Invariants.invariant = "versions-dense") holed)

let test_segment_tree_audit () =
  let tree = Segment_tree.create ~chunks:4 in
  let tree, _ = Segment_tree.set_range tree ~start:1 [| Some 1; Some 2 |] in
  Alcotest.(check int) "well-formed tree audits clean" 0
    (List.length (Invariants.audit_segment_tree ~subject:"t" ~chunks:4 tree));
  Alcotest.(check bool) "undersized tree caught" true
    (Invariants.audit_segment_tree ~subject:"t" ~chunks:16 tree <> [])

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_diff_traces () =
  Alcotest.(check bool) "equal traces" true
    (Determinism.diff_traces [ "a"; "b" ] [ "a"; "b" ] = None);
  (match Determinism.diff_traces [ "a"; "b" ] [ "a"; "c" ] with
  | Some d ->
      Alcotest.(check int) "divergence line" 2 d.Determinism.line_no;
      Alcotest.(check (option string)) "first" (Some "b") d.Determinism.first;
      Alcotest.(check (option string)) "second" (Some "c") d.Determinism.second
  | None -> Alcotest.fail "expected a divergence");
  match Determinism.diff_traces [ "a" ] [ "a"; "b" ] with
  | Some d ->
      Alcotest.(check (option string)) "short run ended" None d.Determinism.first
  | None -> Alcotest.fail "expected a length divergence"

let test_compare_runs_catches_nondeterminism () =
  let counter = ref 0 in
  let report =
    Determinism.compare_runs ~name:"drift" ~seed:1 (fun () ->
        incr counter;
        let engine = Engine.create () in
        let _ =
          Engine.Fiber.spawn engine (fun () ->
              Trace.emit engine ~component:"drift" "run %d" !counter)
        in
        Engine.run engine;
        string_of_int !counter)
  in
  Alcotest.(check bool) "divergence detected" false (Determinism.identical report);
  Alcotest.(check bool) "trace divergence located" true
    (report.Determinism.first_divergence <> None);
  Alcotest.(check bool) "outputs differ" false report.Determinism.outputs_match

let test_registry_experiment_deterministic () =
  match Experiments.Registry.find "fig5a" with
  | None -> Alcotest.fail "fig5a not registered"
  | Some exp ->
      let report =
        Determinism.check_experiment ~exp ~scale:Experiments.Scale.quick ~seed:7
      in
      Alcotest.(check bool)
        (Fmt.str "fig5a quick deterministic: %a" Determinism.pp_report report)
        true (Determinism.identical report)

let test_scrub_replay_deterministic () =
  let report = Determinism.check_scrub_replay ~seed:11 () in
  Alcotest.(check bool)
    (Fmt.str "scrub replay deterministic: %a" Determinism.pp_report report)
    true (Determinism.identical report)

(* ------------------------------------------------------------------ *)
(* Schedule fuzzing *)

let test_fuzz_seed_roundtrip () =
  List.iter
    (fun (slot, fault_seed) ->
      let s = Schedule_fuzz.sample_of_seed (Schedule_fuzz.seed_of ~slot ~fault_seed) in
      Alcotest.(check int) "slot" slot s.Schedule_fuzz.slot;
      Alcotest.(check int) "fault seed" fault_seed s.Schedule_fuzz.fault_seed)
    [ (0, 0); (1, 7); (503, 191191); (999, 1_999_999) ];
  Alcotest.(check bool) "slot 0 is fifo" true
    (Schedule_fuzz.schedule_of_slot 0 = Event_queue.Fifo);
  Alcotest.(check bool) "slot 1 is lifo" true
    (Schedule_fuzz.schedule_of_slot 1 = Event_queue.Lifo);
  Alcotest.(check bool) "slot 503 is shuffle:503" true
    (Schedule_fuzz.schedule_of_slot 503 = Event_queue.Seeded_shuffle 503);
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Schedule_fuzz.seed_of: slot") (fun () ->
      ignore (Schedule_fuzz.seed_of ~slot:1000 ~fault_seed:0))

let test_fuzz_grid_smoke () =
  (* A small grid over the chaos scenario: every sample must pass the
     invariant battery and match the fifo reference results. *)
  let report =
    Schedule_fuzz.run ~fault_streams:2 ~schedules:3 ~master_seed:42 Schedule_fuzz.chaos
  in
  Alcotest.(check int) "sample count" 6 (List.length report.Schedule_fuzz.samples);
  Alcotest.(check bool)
    (Fmt.str "grid clean: %a" Schedule_fuzz.pp_report report)
    true
    (Schedule_fuzz.clean report)

let test_fuzz_replay_byte_identical () =
  let seed = Schedule_fuzz.seed_of ~slot:7 ~fault_seed:12345 in
  let outcome, findings = Schedule_fuzz.replay ~seed Schedule_fuzz.chaos in
  Alcotest.(check (list string)) "replay clean" []
    (List.map (fun f -> Fmt.str "%a" Schedule_fuzz.pp_finding f) findings);
  Alcotest.(check bool) "trace captured" true (outcome.Schedule_fuzz.trace <> []);
  (* The repro command printed for a finding embeds the same seed. *)
  let f =
    {
      Schedule_fuzz.scenario = "chaos";
      sample = Schedule_fuzz.sample_of_seed seed;
      kind = Schedule_fuzz.Invariant;
      detail = "";
    }
  in
  Alcotest.(check string) "repro command"
    (Fmt.str "blobcr_lint fuzz --scenario chaos --seed %d" seed)
    (Schedule_fuzz.repro_command f)

let () =
  Alcotest.run "analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "hashtbl-order rule" `Quick test_lint_hashtbl_order;
          Alcotest.test_case "ambient-effect rules" `Quick test_lint_ambient_effects;
          Alcotest.test_case "strings and comments inert" `Quick
            test_lint_strings_and_comments_inert;
          Alcotest.test_case "poly-compare rule" `Quick test_lint_poly_compare;
          Alcotest.test_case "missing-mli rule" `Quick test_lint_missing_mli;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "qcow2 refcount corruption caught" `Quick
            test_qcow2_audit_catches_refcount_corruption;
          Alcotest.test_case "engine teardown raises Audit_failure" `Quick
            test_engine_teardown_audit;
          Alcotest.test_case "mirror dirty-not-present caught" `Quick
            test_mirror_audit_catches_uncached_dirty;
          Alcotest.test_case "version hole caught" `Quick
            test_version_manager_audit_catches_version_hole;
          Alcotest.test_case "segment-tree shape audit" `Quick test_segment_tree_audit;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "diff_traces" `Quick test_diff_traces;
          Alcotest.test_case "nondeterministic thunk caught" `Quick
            test_compare_runs_catches_nondeterminism;
          Alcotest.test_case "fig5a quick run is deterministic" `Slow
            test_registry_experiment_deterministic;
          Alcotest.test_case "scrub/repair log replays identically" `Slow
            test_scrub_replay_deterministic;
        ] );
      ( "schedule-fuzz",
        [
          Alcotest.test_case "seed encode/decode roundtrip" `Quick test_fuzz_seed_roundtrip;
          Alcotest.test_case "small grid clean" `Slow test_fuzz_grid_smoke;
          Alcotest.test_case "replay byte-identical" `Slow test_fuzz_replay_byte_identical;
        ] );
    ]
