(* Shape-regression tests: run the experiment harness at quick scale and
   assert the qualitative results the paper reports. These protect the
   reproduction itself — if a model change breaks a headline trend, a test
   fails rather than a figure silently degrading. *)

open Simcore
open Experiments

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

let scale = Scale.quick
let combo label = Option.get (Combos.find label)

let last xs = List.nth xs (List.length xs - 1)

(* Cache the expensive sweeps across assertions. *)
let successive =
  lazy
    (List.map
       (fun c ->
         (c.Combos.label, Synthetic_sweep.run_successive scale ~combo:c ~rounds:3
                            ~buffer:scale.Scale.buffer_large))
       Combos.all)

let fig4_points =
  lazy
    (List.map
       (fun c ->
         (c.Combos.label, Synthetic_sweep.run_point scale ~combo:c ~n:1
                            ~buffer:scale.Scale.buffer_small))
       Combos.all)

let multi_instance =
  lazy
    (List.map
       (fun c ->
         ( c.Combos.label,
           Synthetic_sweep.run_point scale ~combo:c ~n:4 ~buffer:scale.Scale.buffer_small ))
       [ combo "BlobCR-app"; combo "qcow2-disk-app"; combo "qcow2-full" ])

let get lazy_list label = List.assoc label (Lazy.force lazy_list)

let test_successive_blobcr_flat () =
  let r = get successive "BlobCR-app" in
  let times = r.Synthetic_sweep.round_times in
  let first = List.hd times and final = last times in
  Alcotest.(check bool)
    (Fmt.str "flat: %.2f .. %.2f" first final)
    true
    (final < first *. 1.15)

let test_successive_qcow2_grows () =
  let r = get successive "qcow2-disk-app" in
  let times = r.Synthetic_sweep.round_times in
  let first = List.hd times and final = last times in
  Alcotest.(check bool)
    (Fmt.str "linear growth: %.2f .. %.2f" first final)
    true
    (final > first *. 1.5)

let test_successive_full_grows () =
  let r = get successive "qcow2-full" in
  let times = r.Synthetic_sweep.round_times in
  Alcotest.(check bool) "grows" true (last times > List.hd times *. 1.5)

let test_successive_storage_shapes () =
  (* qcow2-disk accumulates full copies: superlinear storage; BlobCR adds
     roughly a constant per round. *)
  let blobcr = (get successive "BlobCR-app").Synthetic_sweep.cumulative_storage in
  let qcow2 = (get successive "qcow2-disk-app").Synthetic_sweep.cumulative_storage in
  let growth xs = float_of_int (last xs) /. float_of_int (List.hd xs) in
  Alcotest.(check bool)
    (Fmt.str "qcow2 %.1fx vs blobcr %.1fx" (growth qcow2) (growth blobcr))
    true
    (growth qcow2 > growth blobcr *. 1.4)

let test_fig4_full_carries_ram () =
  let full = (get fig4_points "qcow2-full").Synthetic_sweep.snapshot_bytes in
  let disk = (get fig4_points "qcow2-disk-app").Synthetic_sweep.snapshot_bytes in
  let overhead = full -. disk in
  let expected = float_of_int scale.Scale.cal.Blobcr.Calibration.os_ram_overhead in
  Alcotest.(check bool)
    (Fmt.str "overhead %.1fMB ~ %.1fMB" (overhead /. 1048576.) (expected /. 1048576.))
    true
    (overhead > expected *. 0.6)

let test_fig4_blobcr_granularity_overhead () =
  (* BlobCR snapshots are slightly larger (256 KiB chunks vs 64 KiB
     clusters) but within a few percent at these sizes. *)
  let blobcr = (get fig4_points "BlobCR-app").Synthetic_sweep.snapshot_bytes in
  let qcow2 = (get fig4_points "qcow2-disk-app").Synthetic_sweep.snapshot_bytes in
  Alcotest.(check bool)
    (Fmt.str "blobcr %.2fMB >= qcow2 %.2fMB" (blobcr /. 1048576.) (qcow2 /. 1048576.))
    true
    (blobcr >= qcow2);
  Alcotest.(check bool) "bounded" true (blobcr < qcow2 *. 2.0)

let test_multi_instance_blobcr_wins_checkpoint () =
  let b = (get multi_instance "BlobCR-app").Synthetic_sweep.checkpoint_time in
  let q = (get multi_instance "qcow2-disk-app").Synthetic_sweep.checkpoint_time in
  let f = (get multi_instance "qcow2-full").Synthetic_sweep.checkpoint_time in
  Alcotest.(check bool) (Fmt.str "blobcr %.2f <= qcow2 %.2f" b q) true (b <= q);
  Alcotest.(check bool) (Fmt.str "full %.2f worst (vs %.2f)" f q) true (f > q)

let test_multi_instance_full_restart_worst () =
  let b = (get multi_instance "BlobCR-app").Synthetic_sweep.restart_time in
  let f = (get multi_instance "qcow2-full").Synthetic_sweep.restart_time in
  Alcotest.(check bool) (Fmt.str "full %.2f > blobcr %.2f" f b) true (f > b)

let test_cm1_blcr_bigger_than_app () =
  (* Subdomain state large enough that the dump payload dominates the
     boot-noise chunks both snapshots share — the ratio then reflects the
     process_mem_factor, not incidental COW rounding. *)
  let big =
    {
      scale with
      Scale.cm1_config =
        { scale.Scale.cm1_config with Workloads.Cm1.subdomain_state_bytes = 2 * Size.mib };
    }
  in
  let app = Cm1_sweep.run_point big ~combo:(combo "BlobCR-app") ~vms:2 in
  let blcr = Cm1_sweep.run_point big ~combo:(combo "BlobCR-blcr") ~vms:2 in
  let ratio = blcr.Cm1_sweep.snapshot_bytes /. app.Cm1_sweep.snapshot_bytes in
  Alcotest.(check bool) (Fmt.str "ratio %.2f in [1.5, 4.5]" ratio) true
    (ratio > 1.5 && ratio < 4.5)

let test_registry_runs_everything () =
  (* Every registered experiment must run end to end at quick scale and
     produce non-empty tables. *)
  List.iter
    (fun id ->
      match Registry.find id with
      | None -> Alcotest.failf "missing experiment %s" id
      | Some e ->
          let outputs = e.Registry.run scale ~progress:(fun _ -> ()) in
          Alcotest.(check bool) (id ^ " produces output") true (outputs <> []);
          List.iter
            (fun o ->
              let rendered = Stats.render o.Registry.table in
              Alcotest.(check bool) (id ^ " renders") true (String.length rendered > 40))
            outputs)
    [ "fig4"; "table1" ]

let test_durability_sweep_smoke () =
  (* One cell per (corrupt-weight, replication, scrub-interval) at quick
     scale: the corruption-free cell must finish and never trip a checksum
     failover; the corrupting cell must actually inject corruption. *)
  let points = Durability.sweep scale () in
  Alcotest.(check int) "cells"
    (List.length scale.Scale.durability_corrupt_weights
    * List.length scale.Scale.durability_replications
    * List.length scale.Scale.durability_scrub_intervals)
    (List.length points);
  let clean = List.find (fun p -> p.Durability.corrupt_weight = 0) points in
  Alcotest.(check bool) "corruption-free cell finished" true clean.Durability.finished;
  Alcotest.(check int) "no corruption, no checksum failovers" 0
    clean.Durability.integrity_failovers;
  List.iter
    (fun (p : Durability.point) ->
      Alcotest.(check bool) "checkpoint cost positive" true (p.Durability.checkpoint_cost > 0.0);
      if p.Durability.corrupt_weight > 0 then
        Alcotest.(check bool) "corruption injected" true (p.Durability.corruptions > 0))
    points

let test_sweep_is_deterministic () =
  let p1 =
    Synthetic_sweep.run_point scale ~combo:(combo "BlobCR-app") ~n:2
      ~buffer:scale.Scale.buffer_small
  in
  let p2 =
    Synthetic_sweep.run_point scale ~combo:(combo "BlobCR-app") ~n:2
      ~buffer:scale.Scale.buffer_small
  in
  Alcotest.(check (float 0.0)) "checkpoint time" p1.Synthetic_sweep.checkpoint_time
    p2.Synthetic_sweep.checkpoint_time;
  Alcotest.(check (float 0.0)) "restart time" p1.Synthetic_sweep.restart_time
    p2.Synthetic_sweep.restart_time

let () =
  Alcotest.run "experiments"
    [
      ( "fig5-shapes",
        [
          Alcotest.test_case "blobcr successive flat" `Slow test_successive_blobcr_flat;
          Alcotest.test_case "qcow2-disk successive grows" `Slow test_successive_qcow2_grows;
          Alcotest.test_case "qcow2-full successive grows" `Slow test_successive_full_grows;
          Alcotest.test_case "storage shapes" `Slow test_successive_storage_shapes;
        ] );
      ( "fig4-shapes",
        [
          Alcotest.test_case "full snapshot carries RAM" `Slow test_fig4_full_carries_ram;
          Alcotest.test_case "granularity overhead bounded" `Slow
            test_fig4_blobcr_granularity_overhead;
        ] );
      ( "fig2-3-shapes",
        [
          Alcotest.test_case "blobcr wins checkpoint" `Slow
            test_multi_instance_blobcr_wins_checkpoint;
          Alcotest.test_case "full restart worst" `Slow test_multi_instance_full_restart_worst;
        ] );
      ( "table1-shapes",
        [ Alcotest.test_case "blcr dumps bigger than app" `Slow test_cm1_blcr_bigger_than_app ] );
      ( "durability",
        [ Alcotest.test_case "sweep smoke" `Slow test_durability_sweep_smoke ] );
      ( "harness",
        [
          Alcotest.test_case "registry runs" `Slow test_registry_runs_everything;
          Alcotest.test_case "deterministic" `Slow test_sweep_is_deterministic;
        ] );
    ]
