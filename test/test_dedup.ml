(* Tests for content-addressed chunk deduplication: index hit/miss
   behaviour, refcounted GC, scrub repair of shared chunks, concurrent
   in-flight claims, clean-rewrite suppression on the mirror commit path,
   the dedup refcount invariant audit, and determinism of the dedup
   benchmark experiment. *)

open Simcore
open Netsim
open Storage
open Blobseer

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

type rig = {
  engine : Engine.t;
  service : Client.t;
  client_host : Net.host;
}

let make_rig ?(providers = 4) ?(replication = 1) ?(stripe = 100) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = List.init 2 (fun i -> Net.add_host net ~name:(Fmt.str "meta%d" i)) in
  let data =
    List.init providers (fun i ->
        let host = Net.add_host net ~name:(Fmt.str "node%d" i) in
        let disk = Disk.create engine ~name:(Fmt.str "disk%d" i) () in
        (host, disk))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params = { Types.default_params with stripe_size = stripe; replication } in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts ~data_providers:data ()
  in
  { engine; service; client_host }

let run_rig rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine ~name:"test-main" (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

let payload_str = Payload.of_string

(* Three 100-byte chunks with pairwise distinct content. *)
let three_chunks tag =
  String.concat "" (List.map (fun c -> String.make 100 c) [ tag; Char.chr (Char.code tag + 1); Char.chr (Char.code tag + 2) ])

let first_desc service blob =
  let tree =
    Client.tree blob
      ~version:(Version_manager.peek_latest (Client.version_manager service) (Client.blob_id blob))
  in
  match Segment_tree.get tree 0 with
  | Some d -> d
  | None -> Alcotest.fail "blob has no chunk 0 descriptor"

(* ------------------------------------------------------------------ *)

let test_dedup_hit_ships_nothing () =
  let rig = make_rig () in
  let from = rig.client_host in
  let content = three_chunks 'a' in
  run_rig rig (fun () ->
      let a = Client.create_blob rig.service ~from ~capacity:300 in
      let va = Client.write a ~from ~offset:0 (payload_str content) in
      let repo = Client.repository_bytes rig.service in
      (* Identical content into a different blob: pure index hits. *)
      let b = Client.create_blob rig.service ~from ~capacity:300 in
      let vb = Client.write b ~from ~offset:0 (payload_str content) in
      Alcotest.(check int) "repository unchanged" repo (Client.repository_bytes rig.service);
      let s = Client.dedup_stats rig.service in
      Alcotest.(check int) "three hits" 3 s.Dedup_index.hits;
      Alcotest.(check int) "three misses (first write)" 3 s.Dedup_index.misses;
      Alcotest.(check int) "bytes saved" 300 s.Dedup_index.bytes_saved;
      (* Both descriptors reference the same physical replicas but keep
         distinct identities. *)
      let da = first_desc rig.service a and db = first_desc rig.service b in
      Alcotest.(check bool) "replicas shared" true (da.Types.replicas = db.Types.replicas);
      Alcotest.(check bool) "serials distinct" true (da.Types.serial <> db.Types.serial);
      List.iter
        (fun (blob, v) ->
          Alcotest.(check string) "readback identical" content
            (Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:300)))
        [ (a, va); (b, vb) ])

let test_dedup_miss_grows_repository () =
  let rig = make_rig () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let a = Client.create_blob rig.service ~from ~capacity:300 in
      ignore (Client.write a ~from ~offset:0 (payload_str (three_chunks 'a')));
      let repo = Client.repository_bytes rig.service in
      let b = Client.create_blob rig.service ~from ~capacity:300 in
      ignore (Client.write b ~from ~offset:0 (payload_str (three_chunks 'x')));
      Alcotest.(check int) "repository grew by three chunks" (repo + 300)
        (Client.repository_bytes rig.service);
      Alcotest.(check int) "no hits" 0 (Client.dedup_stats rig.service).Dedup_index.hits)

let test_dedup_disabled_ships_everything () =
  (* Same scenario as the hit test, but the deployment opts out of the
     index: duplicates are stored twice and no index traffic happens. *)
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = [ Net.add_host net ~name:"meta0" ] in
  let data =
    List.init 3 (fun i ->
        (Net.add_host net ~name:(Fmt.str "node%d" i), Disk.create engine ()))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params = { Types.default_params with stripe_size = 100; replication = 1; dedup = false } in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts ~data_providers:data ()
  in
  let rig2 = { engine; service; client_host } in
  run_rig rig2 (fun () ->
      let from = client_host in
      let content = three_chunks 'a' in
      let a = Client.create_blob service ~from ~capacity:300 in
      ignore (Client.write a ~from ~offset:0 (payload_str content));
      let repo = Client.repository_bytes service in
      let b = Client.create_blob service ~from ~capacity:300 in
      let vb = Client.write b ~from ~offset:0 (payload_str content) in
      Alcotest.(check int) "duplicate stored twice" (repo + 300) (Client.repository_bytes service);
      Alcotest.(check int) "no index traffic" 0
        ((Client.dedup_stats service).Dedup_index.hits
        + (Client.dedup_stats service).Dedup_index.misses);
      Alcotest.(check string) "readback fine" content
        (Payload.to_string (Client.read b ~from ~version:vb ~offset:0 ~len:300)))

let test_refcounted_gc_keeps_shared_chunks () =
  let rig = make_rig () in
  let from = rig.client_host in
  let shared = three_chunks 'a' in
  run_rig rig (fun () ->
      let a = Client.create_blob rig.service ~from ~capacity:300 in
      ignore (Client.write a ~from ~offset:0 (payload_str shared));
      let b = Client.create_blob rig.service ~from ~capacity:300 in
      let vb = Client.write b ~from ~offset:0 (payload_str shared) in
      (* Overwrite [a]: its only reference to the shared chunks dies with
         retention, but [b] still holds them. *)
      ignore (Client.write a ~from ~offset:0 (payload_str (three_chunks 'p')));
      let r1 = Blobcr.Gc.collect rig.service ~keep_last:1 () in
      Alcotest.(check int) "shared chunks survive b's reference" 0 r1.Blobcr.Gc.chunks_deleted;
      Alcotest.(check string) "b reads the shared content" shared
        (Payload.to_string (Client.read b ~from ~version:vb ~offset:0 ~len:300));
      (* Overwrite [b] too: now nothing references the shared chunks. *)
      ignore (Client.write b ~from ~offset:0 (payload_str (three_chunks 's')));
      let repo = Client.repository_bytes rig.service in
      let r2 = Blobcr.Gc.collect rig.service ~keep_last:1 () in
      Alcotest.(check int) "shared chunks reclaimed" 3 r2.Blobcr.Gc.chunks_deleted;
      Alcotest.(check int) "index entries dropped with them" 3
        r2.Blobcr.Gc.index_entries_dropped;
      Alcotest.(check int) "bytes reclaimed" (repo - 300) (Client.repository_bytes rig.service))

let test_scrub_repair_heals_every_referencer () =
  let rig = make_rig ~providers:3 ~replication:2 ~stripe:100 () in
  let from = rig.client_host in
  let content = String.make 100 'd' in
  run_rig rig (fun () ->
      let a = Client.create_blob rig.service ~from ~capacity:100 in
      let va = Client.write a ~from ~offset:0 (payload_str content) in
      let b = Client.create_blob rig.service ~from ~capacity:100 in
      let vb = Client.write b ~from ~offset:0 (payload_str content) in
      let desc = first_desc rig.service a in
      let r = List.hd desc.Types.replicas in
      ignore
        (Data_provider.corrupt_chunk
           (Client.data_provider rig.service r.Types.provider)
           ~salt:5 r.Types.chunk);
      let scrub = Scrubber.create rig.service ~home:rig.client_host () in
      Scrubber.scan scrub;
      let stats = Scrubber.stats scrub in
      (* One physical chunk, referenced from two trees: repaired once. *)
      Alcotest.(check int) "one repair" 1 stats.Scrubber.repairs;
      List.iter
        (fun (blob, v) ->
          Alcotest.(check string) "referencing version heals" content
            (Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:100)))
        [ (a, va); (b, vb) ];
      (* The index was repointed at the repaired replica set: a third
         write of the same content still hits and ships nothing. *)
      let repo = Client.repository_bytes rig.service in
      let hits = (Client.dedup_stats rig.service).Dedup_index.hits in
      let c = Client.create_blob rig.service ~from ~capacity:100 in
      ignore (Client.write c ~from ~offset:0 (payload_str content));
      Alcotest.(check int) "repaired entry still hits" (hits + 1)
        (Client.dedup_stats rig.service).Dedup_index.hits;
      Alcotest.(check int) "nothing shipped" repo (Client.repository_bytes rig.service))

let test_concurrent_identical_writes_store_once () =
  let rig = make_rig () in
  let from = rig.client_host in
  let content = String.make 100 'c' in
  run_rig rig (fun () ->
      let a = Client.create_blob rig.service ~from ~capacity:100 in
      let b = Client.create_blob rig.service ~from ~capacity:100 in
      let repo = Client.repository_bytes rig.service in
      (* Two fibers race identical content: the in-flight claim makes the
         second wait for the first writer's outcome instead of storing a
         duplicate copy. *)
      Engine.all rig.engine ~name:"racers"
        [
          (fun () -> ignore (Client.write a ~from ~offset:0 (payload_str content)));
          (fun () -> ignore (Client.write b ~from ~offset:0 (payload_str content)));
        ];
      Alcotest.(check int) "one physical copy" (repo + 100) (Client.repository_bytes rig.service);
      let s = Client.dedup_stats rig.service in
      Alcotest.(check int) "one miss" 1 s.Dedup_index.misses;
      Alcotest.(check int) "one hit" 1 s.Dedup_index.hits;
      List.iter
        (fun blob ->
          let v =
            Version_manager.peek_latest (Client.version_manager rig.service)
              (Client.blob_id blob)
          in
          Alcotest.(check string) "readback" content
            (Payload.to_string (Client.read blob ~from ~version:v ~offset:0 ~len:100)))
        [ a; b ])

let test_clean_rewrite_suppression () =
  let rig = make_rig () in
  let from = rig.client_host in
  let content = three_chunks 'a' in
  run_rig rig (fun () ->
      let blob = Client.create_blob rig.service ~from ~capacity:300 in
      ignore (Client.write blob ~from ~offset:0 (payload_str content));
      let repo = Client.repository_bytes rig.service in
      let job i = (i, fun () -> payload_str (String.sub content (i * 100) 100)) in
      let v2, stats =
        Client.write_chunks blob ~from ~suppress_clean:true [ job 0; job 1; job 2 ]
      in
      Alcotest.(check int) "all chunks suppressed" 3 stats.Client.chunks_suppressed;
      Alcotest.(check int) "no bytes shipped" 0 stats.Client.bytes_shipped;
      Alcotest.(check int) "no bytes deduped" 0 stats.Client.bytes_deduped;
      Alcotest.(check int) "repository unchanged" repo (Client.repository_bytes rig.service);
      Alcotest.(check string) "new version reads the same bytes" content
        (Payload.to_string (Client.read blob ~from ~version:v2 ~offset:0 ~len:300)))

let test_mirror_commit_dedups_across_instances () =
  let open Blobcr in
  let cluster = Cluster.build ~seed:7 Calibration.quick_test in
  Cluster.run cluster (fun () ->
      let stripe = Client.stripe_size cluster.Cluster.base_blob in
      let mirror i =
        let node = Cluster.node cluster i in
        Vdisk.Mirror.create cluster.Cluster.engine ~host:node.Cluster.host
          ~local_disk:node.Cluster.disk ~base:cluster.Cluster.base_blob
          ~base_version:cluster.Cluster.base_version
          ~name:(Fmt.str "m%d" i) ()
      in
      let m1 = mirror 0 and m2 = mirror 1 in
      List.iter
        (fun m ->
          for c = 0 to 1 do
            Vdisk.Mirror.write m ~offset:(c * stripe)
              (Payload.pattern ~seed:(Int64.of_int (c + 77)) stripe)
          done)
        [ m1; m2 ];
      ignore (Vdisk.Mirror.commit m1);
      let s1 = Vdisk.Mirror.last_commit_stats m1 in
      Alcotest.(check int) "first committer ships both chunks" (2 * stripe)
        s1.Client.bytes_shipped;
      ignore (Vdisk.Mirror.commit m2);
      let s2 = Vdisk.Mirror.last_commit_stats m2 in
      Alcotest.(check int) "second committer ships nothing" 0 s2.Client.bytes_shipped;
      Alcotest.(check int) "both chunks dedup'd" 2 s2.Client.chunks_deduped;
      List.iter
        (fun m ->
          let image = Option.get (Vdisk.Mirror.checkpoint_image m) in
          let v = Client.latest_version image ~from:cluster.Cluster.supervisor_host in
          let back =
            Client.read image ~from:cluster.Cluster.supervisor_host ~version:v ~offset:0
              ~len:stripe
          in
          Alcotest.(check bool) "committed image reads the written pattern" true
            (Payload.equal back (Payload.pattern ~seed:77L stripe)))
        [ m1; m2 ])

(* Seeding refcount corruption by hand must not also trip the teardown
   audit. *)
let without_teardown_audits f =
  let was = Engine.audits_enabled () in
  Engine.set_audits_enabled false;
  Fun.protect ~finally:(fun () -> Engine.set_audits_enabled was) f

let test_refcount_audit_catches_drift () =
  without_teardown_audits @@ fun () ->
  let rig = make_rig () in
  let from = rig.client_host in
  let clean, drifted =
    run_rig rig (fun () ->
        let a = Client.create_blob rig.service ~from ~capacity:300 in
        ignore (Client.write a ~from ~offset:0 (payload_str (three_chunks 'a')));
        let b = Client.create_blob rig.service ~from ~capacity:300 in
        ignore (Client.write b ~from ~offset:0 (payload_str (three_chunks 'a')));
        let clean = Analysis.Invariants.audit_client rig.service in
        let digest = (first_desc rig.service a).Types.digest in
        Dedup_index.unsafe_set_refs
          (Provider_manager.dedup_index (Client.provider_manager rig.service))
          ~digest 99;
        (clean, Analysis.Invariants.audit_client rig.service))
  in
  Alcotest.(check int) "shared-content deployment audits clean" 0 (List.length clean);
  Alcotest.(check bool) "refcount drift caught" true
    (List.exists (fun v -> v.Analysis.Invariants.invariant = "dedup-refcount") drifted)

let test_dedup_experiment_deterministic () =
  match Experiments.Registry.find "dedup" with
  | None -> Alcotest.fail "dedup experiment not registered"
  | Some exp ->
      let report =
        Analysis.Determinism.check_experiment ~exp ~scale:Experiments.Scale.quick ~seed:13
      in
      Alcotest.(check bool)
        (Fmt.str "dedup quick deterministic: %a" Analysis.Determinism.pp_report report)
        true
        (Analysis.Determinism.identical report)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dedup"
    [
      ( "index",
        [
          Alcotest.test_case "duplicate write ships nothing" `Quick test_dedup_hit_ships_nothing;
          Alcotest.test_case "unique write grows the repository" `Quick
            test_dedup_miss_grows_repository;
          Alcotest.test_case "dedup disabled stores duplicates" `Quick
            test_dedup_disabled_ships_everything;
          Alcotest.test_case "concurrent identical writes store once" `Quick
            test_concurrent_identical_writes_store_once;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "refcounted GC keeps shared chunks" `Quick
            test_refcounted_gc_keeps_shared_chunks;
          Alcotest.test_case "scrub repair heals every referencer" `Quick
            test_scrub_repair_heals_every_referencer;
          Alcotest.test_case "refcount drift caught by audit" `Quick
            test_refcount_audit_catches_drift;
        ] );
      ( "commit-path",
        [
          Alcotest.test_case "clean rewrite suppressed end to end" `Quick
            test_clean_rewrite_suppression;
          Alcotest.test_case "mirror commits dedup across instances" `Quick
            test_mirror_commit_dedups_across_instances;
          Alcotest.test_case "dedup experiment replays identically" `Slow
            test_dedup_experiment_deterministic;
        ] );
    ]
