(* End-to-end tests for the BlobCR core: VM lifecycle, guest FS, blcr, the
   checkpoint proxy, all three image stacks (deploy → checkpoint → kill →
   restart), rollback semantics, the coordinated protocol, CM1, and garbage
   collection. *)

open Simcore
open Vmsim
open Blobcr
open Workloads

let quick = Calibration.quick_test
let mib = Size.mib

let build () = Cluster.build ~seed:7 quick

(* ------------------------------------------------------------------ *)
(* Guest_fs on an in-memory device *)

let test_guest_fs_basics () =
  let dev = Vdisk.Block_dev.in_memory ~capacity:(Size.mib_n 16) in
  let fs = Guest_fs.format dev ~meta_region:(Size.mib_n 1) () in
  Guest_fs.write_file fs ~path:"/a" (Payload.of_string "alpha");
  Guest_fs.append_file fs ~path:"/a" (Payload.of_string "beta");
  Alcotest.(check string) "read" "alphabeta" (Payload.to_string (Guest_fs.read_file fs ~path:"/a"));
  Alcotest.(check int) "size" 9 (Guest_fs.file_size fs ~path:"/a");
  Alcotest.(check (list string)) "list" [ "/a" ] (Guest_fs.list_files fs)

let test_guest_fs_persistence_via_mount () =
  let dev = Vdisk.Block_dev.in_memory ~capacity:(Size.mib_n 16) in
  let fs = Guest_fs.format dev ~meta_region:(Size.mib_n 1) () in
  Guest_fs.write_file fs ~path:"/data/x" (Payload.of_string "persisted");
  Guest_fs.write_file fs ~path:"/data/y" (Payload.pattern ~seed:5L 10000);
  Guest_fs.sync fs;
  (* A different mount of the same device sees the files. *)
  let fs' = Guest_fs.mount dev in
  Alcotest.(check string) "x" "persisted" (Payload.to_string (Guest_fs.read_file fs' ~path:"/data/x"));
  Alcotest.(check bool) "y content" true
    (Payload.equal (Payload.pattern ~seed:5L 10000) (Guest_fs.read_file fs' ~path:"/data/y"));
  Alcotest.(check (list string)) "all files" [ "/data/x"; "/data/y" ] (Guest_fs.list_files fs')

let test_guest_fs_unsynced_writes_not_on_device () =
  let dev = Vdisk.Block_dev.in_memory ~capacity:(Size.mib_n 16) in
  let fs = Guest_fs.format dev ~meta_region:(Size.mib_n 1) () in
  Guest_fs.sync fs;
  Guest_fs.write_file fs ~path:"/late" (Payload.of_string "in cache only");
  Alcotest.(check int) "dirty" 13 (Guest_fs.dirty_bytes fs);
  let fs' = Guest_fs.mount dev in
  Alcotest.(check bool) "not visible before sync" false (Guest_fs.exists fs' ~path:"/late")

let test_guest_fs_delete_and_reuse () =
  let dev = Vdisk.Block_dev.in_memory ~capacity:(Size.mib_n 16) in
  let fs = Guest_fs.format dev ~meta_region:(Size.mib_n 1) () in
  Guest_fs.write_file fs ~path:"/big" (Payload.pattern ~seed:1L (Size.mib_n 2));
  Guest_fs.sync fs;
  let used = Guest_fs.used_bytes fs in
  Guest_fs.delete_file fs ~path:"/big";
  Guest_fs.write_file fs ~path:"/big2" (Payload.pattern ~seed:2L (Size.mib_n 2));
  Guest_fs.sync fs;
  Alcotest.(check int) "space reused" used (Guest_fs.used_bytes fs);
  Alcotest.(check bool) "old gone" false (Guest_fs.exists fs ~path:"/big")

let test_guest_fs_full () =
  let dev = Vdisk.Block_dev.in_memory ~capacity:(Size.mib_n 2) in
  let fs = Guest_fs.format dev ~meta_region:(Size.mib_n 1) () in
  Guest_fs.write_file fs ~path:"/huge" (Payload.zero (Size.mib_n 4));
  Alcotest.check_raises "fs full" Guest_fs.Fs_full (fun () -> Guest_fs.sync fs)

(* ------------------------------------------------------------------ *)
(* Deploy / checkpoint / restart per approach *)

let fresh_instance cluster kind ~node_index ~id =
  Approach.deploy cluster kind ~node:(Cluster.node cluster node_index) ~id

let all_kinds = [ Approach.Blobcr; Approach.Qcow2_disk; Approach.Qcow2_full ]

let test_deploy_and_boot kind () =
  let cluster = build () in
  let state =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster kind ~node_index:0 ~id:"vm0" in
        Vm.state inst.Approach.vm)
  in
  Alcotest.(check bool) "running" true (state = Vm.Running)

let test_checkpoint_restart_roundtrip kind () =
  let cluster = build () in
  let ok =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster kind ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(4 * mib) in
        let before = Payload.digest (Synthetic.buffer bench) in
        Synthetic.dump_app bench;
        let snapshot = Approach.request_checkpoint cluster inst in
        Approach.kill inst;
        (* Restart on a different node, per the paper's methodology. *)
        let inst' =
          Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0r" snapshot
        in
        let restored =
          match kind with
          | Approach.Qcow2_full -> Synthetic.resume_in_memory inst'
          | _ -> Synthetic.restore_app inst'
        in
        match kind with
        | Approach.Qcow2_full ->
            (* State travels in RAM; verify the process footprint. *)
            Payload.length (Synthetic.buffer restored) = 4 * mib
        | _ -> Payload.digest (Synthetic.buffer restored) = before)
  in
  Alcotest.(check bool) "state restored" true ok

let test_blcr_checkpoint_restart kind () =
  let cluster = build () in
  let size =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster kind ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(2 * mib) in
        Synthetic.dump_blcr bench;
        let snapshot = Approach.request_checkpoint cluster inst in
        Approach.kill inst;
        let inst' =
          Approach.restart cluster ~node:(Cluster.node cluster 2) ~id:"vm0r" snapshot
        in
        let restored = Synthetic.restore_blcr inst' in
        Payload.length (Synthetic.buffer restored))
  in
  Alcotest.(check int) "blcr dump restored" (2 * mib) size

let test_filesystem_rollback kind () =
  (* The paper's headline semantic feature: file modifications made after
     the checkpoint are rolled back on restart. *)
  let cluster = build () in
  let exists_good, exists_corruption =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster kind ~node_index:0 ~id:"vm0" in
        let fs = Vm.fs inst.Approach.vm in
        Guest_fs.write_file fs ~path:"/result/good" (Payload.of_string "committed");
        Guest_fs.sync fs;
        let snapshot = Approach.request_checkpoint cluster inst in
        (* Post-checkpoint writes: a log line and a corrupted result. *)
        Guest_fs.append_file fs ~path:"/result/good" (Payload.of_string "GARBAGE");
        Guest_fs.write_file fs ~path:"/result/corrupt" (Payload.of_string "bad");
        Guest_fs.sync fs;
        Approach.kill inst;
        let inst' =
          Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0r" snapshot
        in
        let fs' = Vm.fs inst'.Approach.vm in
        ( Payload.to_string (Guest_fs.read_file fs' ~path:"/result/good"),
          Guest_fs.exists fs' ~path:"/result/corrupt" ))
  in
  Alcotest.(check string) "pre-checkpoint content exact" "committed" exists_good;
  Alcotest.(check bool) "post-checkpoint write rolled back" false exists_corruption

let test_blobcr_snapshot_is_incremental () =
  let cluster = build () in
  let first, second =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(4 * mib) in
        Synthetic.dump_app bench;
        let s1 = Approach.request_checkpoint cluster inst in
        Synthetic.refill bench;
        Synthetic.dump_app bench;
        let s2 = Approach.request_checkpoint cluster inst in
        (Approach.snapshot_bytes s1, Approach.snapshot_bytes s2))
  in
  (* First snapshot: buffer + FS metadata + boot noise. Second: only the
     new buffer dump + metadata. *)
  Alcotest.(check bool) (Fmt.str "first %d covers buffer" first) true (first >= 4 * mib);
  Alcotest.(check bool)
    (Fmt.str "second (%d) incremental, no re-upload of noise (%d)" second first)
    true
    (second >= 4 * mib && second < first);
  Alcotest.(check bool) "bounded overhead" true (first < 4 * mib + (8 * mib))

let test_qcow2_disk_snapshots_grow () =
  let cluster = build () in
  let s1, s2 =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Qcow2_disk ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(4 * mib) in
        Synthetic.dump_app bench;
        let s1 = Approach.request_checkpoint cluster inst in
        Synthetic.refill bench;
        Synthetic.dump_app bench;
        let s2 = Approach.request_checkpoint cluster inst in
        (Approach.snapshot_bytes s1, Approach.snapshot_bytes s2))
  in
  Alcotest.(check bool)
    (Fmt.str "second full copy (%d) larger than first (%d)" s2 s1)
    true
    (s2 > s1 + (3 * mib))

let test_full_snapshot_carries_ram_overhead () =
  let cluster = build () in
  let full_bytes, disk_bytes =
    Cluster.run cluster (fun () ->
        let mk kind id node_index =
          let inst = fresh_instance cluster kind ~node_index ~id in
          let bench = Synthetic.start inst ~buffer_bytes:(4 * mib) in
          Synthetic.dump_app bench;
          Approach.snapshot_bytes (Approach.request_checkpoint cluster inst)
        in
        let full = mk Approach.Qcow2_full "vmf" 0 in
        let disk = mk Approach.Qcow2_disk "vmd" 1 in
        (full, disk))
  in
  Alcotest.(check bool)
    (Fmt.str "full (%d) exceeds disk (%d) by ~os ram overhead" full_bytes disk_bytes)
    true
    (full_bytes - disk_bytes > quick.Calibration.os_ram_overhead / 2)

let test_proxy_rejects_foreign_vm () =
  let cluster = build () in
  let raised =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let foreign_proxy = Ckpt_proxy.create cluster ~node:(Cluster.node cluster 3) in
        try
          ignore
            (Ckpt_proxy.request_checkpoint foreign_proxy ~vm:inst.Approach.vm
               ~snapshot:(fun () -> ()));
          false
        with Ckpt_proxy.Not_local -> true)
  in
  Alcotest.(check bool) "authentication" true raised

let test_proxy_resumes_vm_on_snapshot_failure () =
  let cluster = build () in
  let state, failures =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        (try
           ignore
             (Ckpt_proxy.request_checkpoint inst.Approach.proxy ~vm:inst.Approach.vm
                ~snapshot:(fun () -> failwith "snapshot exploded"))
         with Failure _ -> ());
        (Vm.state inst.Approach.vm, Ckpt_proxy.failures inst.Approach.proxy))
  in
  Alcotest.(check bool) "vm resumed" true (state = Vm.Running);
  Alcotest.(check int) "failure counted" 1 failures

let test_vm_suspend_blocks_guest () =
  let cluster = build () in
  let progressed_while_suspended, progressed_after =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let vm = inst.Approach.vm in
        let steps = ref 0 in
        let _ =
          Engine.Fiber.spawn cluster.Cluster.engine ~group:(Vm.group vm) (fun () ->
              for _ = 1 to 1000 do
                Vm.pause_point vm;
                Engine.sleep cluster.Cluster.engine 0.1;
                incr steps
              done)
        in
        Engine.sleep cluster.Cluster.engine 1.0;
        Vm.suspend vm;
        let at_suspend = !steps in
        Engine.sleep cluster.Cluster.engine 5.0;
        let during = !steps - at_suspend in
        Vm.resume vm;
        Engine.sleep cluster.Cluster.engine 2.0;
        (during, !steps - at_suspend))
  in
  (* At most one in-flight step may finish after suspension. *)
  Alcotest.(check bool) "frozen" true (progressed_while_suspended <= 1);
  Alcotest.(check bool) "resumed" true (progressed_after > 5)

(* ------------------------------------------------------------------ *)
(* Global protocol *)

let test_global_checkpoint_restart_many () =
  let cluster = build () in
  let digests_before, digests_after =
    Cluster.run cluster (fun () ->
        let instances =
          List.map
            (fun i ->
              fresh_instance cluster Approach.Blobcr ~node_index:i ~id:(Fmt.str "vm%d" i))
            [ 0; 1 ]
        in
        let benches =
          List.map (fun inst -> Synthetic.start inst ~buffer_bytes:(2 * mib)) instances
        in
        let digests_before =
          List.map (fun b -> Payload.digest (Synthetic.buffer b)) benches
        in
        let by_instance = List.combine instances benches in
        let snapshots =
          Protocol.global_checkpoint_exn cluster ~instances ~dump:(fun inst ->
              Synthetic.dump_app (List.assq inst by_instance))
        in
        Protocol.kill_all instances;
        (* Redeploy on the complementary nodes. *)
        let plan =
          List.mapi
            (fun i snapshot -> (Cluster.node cluster (2 + i), Fmt.str "vm%dr" i, snapshot))
            snapshots
        in
        let restored = ref [] in
        let new_instances =
          Protocol.global_restart_exn cluster ~plan ~restore:(fun inst ->
              let bench = Synthetic.restore_app inst in
              restored := bench :: !restored)
        in
        ignore new_instances;
        let digests_after =
          List.rev_map (fun b -> Payload.digest (Synthetic.buffer b)) !restored
          |> List.sort compare
        in
        (List.sort compare digests_before, digests_after))
  in
  Alcotest.(check (list int64)) "all buffers restored" digests_before digests_after

let test_cm1_iterates_and_survives_restart () =
  let cluster = build () in
  let before, after =
    Cluster.run cluster (fun () ->
        let instances =
          List.map
            (fun i ->
              fresh_instance cluster Approach.Blobcr ~node_index:i ~id:(Fmt.str "cm1-%d" i))
            [ 0; 1 ]
        in
        let cm1 =
          Cm1.setup cluster ~instances
            {
              Cm1.default_config with
              procs_per_vm = 2;
              subdomain_state_bytes = 256 * Size.kib;
              compute_per_iteration = 0.01;
              summary_every = 5;
            }
        in
        Cm1.iterate cm1 10;
        let before = List.concat_map (Cm1.subdomain_digests cm1) instances in
        let snapshots =
          Protocol.global_checkpoint_exn cluster ~instances ~dump:(Cm1.dump_app cm1)
        in
        Cm1.iterate cm1 7;
        Protocol.kill_all instances;
        let plan =
          List.mapi
            (fun i snapshot -> (Cluster.node cluster (2 + i), Fmt.str "cm1-%dr" i, snapshot))
            snapshots
        in
        let new_instances =
          Protocol.global_restart_exn cluster ~plan ~restore:(fun _ -> ())
        in
        (* Rebind the workload to the restarted instances and reload the
           subdomains from the snapshot. *)
        let cm1' =
          Cm1.setup cluster ~instances:new_instances
            {
              Cm1.default_config with
              procs_per_vm = 2;
              subdomain_state_bytes = 256 * Size.kib;
            }
        in
        List.iter (Cm1.restore_app cm1') new_instances;
        let after = List.concat_map (Cm1.subdomain_digests cm1') new_instances in
        (before, after))
  in
  Alcotest.(check (list int64)) "subdomains roll back to the checkpoint" before after

let test_cm1_blcr_dump_sizes () =
  let cluster = build () in
  let app_size, blcr_size =
    Cluster.run cluster (fun () ->
        let mk id node_index =
          fresh_instance cluster Approach.Blobcr ~node_index ~id
        in
        (* State large enough that the dump payload dominates the shared
           boot-noise chunks; the size ratio then reflects the 2.9x memory
           factor instead of incidental COW rounding. *)
        let cfg =
          {
            Cm1.default_config with
            procs_per_vm = 2;
            subdomain_state_bytes = 2 * Size.mib;
            process_mem_factor = 2.9;
          }
        in
        let inst_a = mk "a" 0 in
        let cm_a = Cm1.setup cluster ~instances:[ inst_a ] cfg in
        Cm1.dump_app cm_a inst_a;
        let s_app = Approach.request_checkpoint cluster inst_a in
        let inst_b = mk "b" 1 in
        let cm_b = Cm1.setup cluster ~instances:[ inst_b ] cfg in
        Cm1.dump_blcr cm_b inst_b;
        let s_blcr = Approach.request_checkpoint cluster inst_b in
        (Approach.snapshot_bytes s_app, Approach.snapshot_bytes s_blcr))
  in
  (* blcr dumps all allocated memory: ~2.9x the subdomain state. *)
  Alcotest.(check bool)
    (Fmt.str "blcr (%d) much larger than app (%d)" blcr_size app_size)
    true
    (float_of_int blcr_size > 1.8 *. float_of_int app_size)

(* ------------------------------------------------------------------ *)
(* Garbage collection *)

let test_gc_reclaims_obsolete_snapshots () =
  let cluster = build () in
  let before, report, after, still_readable =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(2 * mib) in
        let last = ref None in
        for _ = 1 to 4 do
          Synthetic.refill bench;
          (* The application keeps only its newest checkpoint file, so
             older snapshot versions are the sole owners of older data. *)
          Synthetic.dump_app ~retain:1 bench;
          last := Some (Approach.request_checkpoint cluster inst)
        done;
        let before = Blobseer.Client.repository_bytes cluster.Cluster.service in
        let report = Gc.collect cluster.Cluster.service ~keep_last:1 () in
        let after = Blobseer.Client.repository_bytes cluster.Cluster.service in
        (* The newest snapshot must remain fully readable. *)
        let readable =
          match !last with
          | Some (Approach.Blobcr_snapshot { image; version }) ->
              let p =
                Blobseer.Client.read image ~from:(Cluster.node cluster 1).Cluster.host
                  ~version ~offset:0 ~len:(1 * mib)
              in
              Payload.length p = 1 * mib
          | _ -> false
        in
        (before, report, after, readable))
  in
  Alcotest.(check bool) "bytes reclaimed" true (report.Gc.bytes_reclaimed > 4 * mib);
  Alcotest.(check bool) "storage shrank" true (after < before);
  Alcotest.(check bool) "versions dropped" true (report.Gc.versions_dropped >= 3);
  Alcotest.(check bool) "latest snapshot intact" true still_readable

let test_gc_keeps_shared_base_chunks () =
  let cluster = build () in
  let boots_after_gc =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:mib in
        Synthetic.dump_app bench;
        let snapshot = Approach.request_checkpoint cluster inst in
        ignore (Gc.collect cluster.Cluster.service ~keep_last:1 ());
        Approach.kill inst;
        (* Restart still works: base-image chunks shared with the snapshot
           must have survived the sweep. *)
        let inst' =
          Approach.restart cluster ~node:(Cluster.node cluster 1) ~id:"vm0r" snapshot
        in
        Vm.state inst'.Approach.vm = Vm.Running)
  in
  Alcotest.(check bool) "restart after gc" true boots_after_gc

let test_gc_pins_protect_rollback_target () =
  let cluster = build () in
  let report, pinned_bytes, surviving_versions =
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(2 * mib) in
        let snaps = ref [] in
        for _ = 1 to 4 do
          Synthetic.refill bench;
          Synthetic.dump_app ~retain:1 bench;
          snaps := Approach.request_checkpoint cluster inst :: !snaps
        done;
        match List.rev !snaps with
        | Approach.Blobcr_snapshot { image; version = oldest } :: _ ->
            let blob = Blobseer.Client.blob_id image in
            (* Pin the oldest snapshot — the rollback target a concurrent
               recovery may be about to restore — then collect keeping only
               the newest version. Without the pin this version would be
               retention's first casualty. *)
            let report =
              Gc.collect cluster.Cluster.service ~pins:[ (blob, oldest) ] ~keep_last:1 ()
            in
            let p =
              Blobseer.Client.read image ~from:(Cluster.node cluster 1).Cluster.host
                ~version:oldest ~offset:0 ~len:(1 * mib)
            in
            let vm = Blobseer.Client.version_manager cluster.Cluster.service in
            (report, Payload.length p, Blobseer.Version_manager.versions vm ~blob)
        | _ -> Alcotest.fail "expected blobcr snapshots")
  in
  (* Intermediate (unpinned, non-newest) versions still get reclaimed. *)
  Alcotest.(check bool) "unpinned versions dropped" true (report.Gc.versions_dropped >= 2);
  Alcotest.(check int) "pinned version fully readable" (1 * mib) pinned_bytes;
  Alcotest.(check bool)
    "pinned version retained in version manager" true
    (List.length surviving_versions >= 2)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_trace_captures_lifecycle () =
  let scenario () =
    let cluster = build () in
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:mib in
        Synthetic.dump_app bench;
        ignore (Approach.request_checkpoint cluster inst);
        Approach.kill inst)
  in
  let (), lines = Trace.capture scenario in
  let has fragment =
    List.exists
      (fun line ->
        let rec search i =
          i + String.length fragment <= String.length line
          && (String.sub line i (String.length fragment) = fragment || search (i + 1))
        in
        search 0)
      lines
  in
  Alcotest.(check bool) "boot traced" true (has "booted");
  Alcotest.(check bool) "CLONE traced" true (has "CLONE");
  Alcotest.(check bool) "COMMIT traced" true (has "COMMIT");
  Alcotest.(check bool) "suspend traced" true (has "suspended");
  Alcotest.(check bool) "proxy traced" true (has "checkpoint request served");
  Alcotest.(check bool) "kill traced" true (has "fail-stop");
  (* Same seed, same trace: event-for-event determinism. *)
  let (), lines' = Trace.capture scenario in
  Alcotest.(check (list string)) "trace deterministic" lines lines'

let test_simulation_deterministic () =
  let once () =
    let cluster = build () in
    Cluster.run cluster (fun () ->
        let inst = fresh_instance cluster Approach.Blobcr ~node_index:0 ~id:"vm0" in
        let bench = Synthetic.start inst ~buffer_bytes:(2 * mib) in
        Synthetic.dump_app bench;
        let t0 = Cluster.now cluster in
        ignore (Approach.request_checkpoint cluster inst);
        Cluster.now cluster -. t0)
  in
  let a = once () and b = once () in
  Alcotest.(check (float 0.0)) "identical checkpoint duration" a b

let kind_cases name f =
  List.map
    (fun kind ->
      Alcotest.test_case (Fmt.str "%s (%s)" name (Approach.kind_name kind)) `Quick (f kind))
    all_kinds

let () =
  Alcotest.run "blobcr"
    [
      ( "guest_fs",
        [
          Alcotest.test_case "basics" `Quick test_guest_fs_basics;
          Alcotest.test_case "persistence via mount" `Quick test_guest_fs_persistence_via_mount;
          Alcotest.test_case "unsynced writes stay in cache" `Quick
            test_guest_fs_unsynced_writes_not_on_device;
          Alcotest.test_case "delete and reuse" `Quick test_guest_fs_delete_and_reuse;
          Alcotest.test_case "fs full" `Quick test_guest_fs_full;
        ] );
      ("deploy", kind_cases "deploy and boot" test_deploy_and_boot);
      ( "checkpoint-restart",
        kind_cases "app-level roundtrip" test_checkpoint_restart_roundtrip
        @ kind_cases "blcr roundtrip" test_blcr_checkpoint_restart
        @ kind_cases "filesystem rollback" test_filesystem_rollback );
      ( "snapshots",
        [
          Alcotest.test_case "blobcr snapshots incremental" `Quick
            test_blobcr_snapshot_is_incremental;
          Alcotest.test_case "qcow2 disk snapshots grow" `Quick test_qcow2_disk_snapshots_grow;
          Alcotest.test_case "full snapshot carries RAM" `Quick
            test_full_snapshot_carries_ram_overhead;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "rejects foreign VM" `Quick test_proxy_rejects_foreign_vm;
          Alcotest.test_case "resumes VM on failure" `Quick
            test_proxy_resumes_vm_on_snapshot_failure;
          Alcotest.test_case "suspend blocks guest" `Quick test_vm_suspend_blocks_guest;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "global checkpoint/restart" `Quick
            test_global_checkpoint_restart_many;
          Alcotest.test_case "cm1 survives restart" `Quick test_cm1_iterates_and_survives_restart;
          Alcotest.test_case "cm1 blcr dump sizes" `Quick test_cm1_blcr_dump_sizes;
        ] );
      ( "gc",
        [
          Alcotest.test_case "reclaims obsolete snapshots" `Quick
            test_gc_reclaims_obsolete_snapshots;
          Alcotest.test_case "keeps shared base chunks" `Quick test_gc_keeps_shared_base_chunks;
          Alcotest.test_case "pins protect rollback target" `Quick
            test_gc_pins_protect_rollback_target;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "repeatable timings" `Quick test_simulation_deterministic;
          Alcotest.test_case "trace captures lifecycle" `Quick test_trace_captures_lifecycle;
        ] );
    ]
