(* Tests for the observability layer: span nesting and attribution, the
   metrics registry, snapshot determinism across seeded runs, Chrome-trace
   export well-formedness, and the end-to-end tiling contract (leaf phases
   of a checkpoint sum to its critical-path duration). *)

open Simcore
open Blobcr
open Workloads

let quick = Calibration.quick_test
let mib = Size.mib
let build () = Cluster.build ~seed:7 quick

(* Minted at module init, like real instrumented modules: present in the
   schema of every snapshot below, so it cannot skew the determinism
   comparison. *)
let test_counter = Obs.Metrics.counter ~component:"test" ~name:"events"
let test_gauge = Obs.Metrics.gauge ~component:"test" ~name:"level"

let find_span run name =
  match List.find_opt (fun s -> s.Obs.Record.name = name) run.Obs.Record.spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not captured" name

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  let eng = Engine.create ~seed:1 () in
  let (), run =
    Obs.Record.capture (fun () ->
        Obs.Record.label_track eng "unit";
        let _ =
          Engine.Fiber.spawn eng ~name:"worker" (fun () ->
              Obs.Span.with_ eng ~component:"t" ~name:"outer"
                ~attrs:[ ("job", Obs.Record.Str "demo") ]
                (fun () ->
                  Engine.sleep eng 1.0;
                  Obs.Span.with_ eng ~component:"t" ~name:"inner" (fun () ->
                      Obs.Span.add_attr eng "bytes" (Obs.Record.Bytes 1024);
                      Engine.sleep eng 2.0);
                  Engine.sleep eng 0.5))
        in
        Engine.run eng)
  in
  let outer = find_span run "outer" and inner = find_span run "inner" in
  Alcotest.(check bool) "outer is a root" true (outer.parent = None);
  Alcotest.(check (option int)) "inner nests in outer" (Some outer.id) inner.parent;
  Alcotest.(check string) "component" "t" inner.component;
  Alcotest.(check string) "fiber attribution" "worker" outer.fiber_name;
  Alcotest.(check (float 1e-9)) "outer spans the whole body" 3.5 outer.duration;
  Alcotest.(check (float 1e-9)) "inner starts after the first sleep" 1.0
    (inner.start_time -. outer.start_time);
  Alcotest.(check (float 1e-9)) "inner duration" 2.0 inner.duration;
  Alcotest.(check bool) "initial attr kept" true (List.mem_assoc "job" outer.attrs);
  Alcotest.(check bool) "add_attr reaches the innermost span" true
    (List.mem_assoc "bytes" inner.attrs);
  Alcotest.(check (list (pair int string)))
    "track labelled"
    [ (outer.track, "unit") ]
    run.tracks

let test_no_collector_is_noop () =
  Alcotest.(check bool) "not recording" false (Obs.Record.recording ());
  let eng = Engine.create ~seed:1 () in
  (* Outside a capture these must record nothing and cost nothing. *)
  Obs.Span.with_ eng ~component:"t" ~name:"ghost" (fun () -> ());
  Obs.Metrics.incr test_counter;
  Obs.Metrics.set test_gauge 99;
  let (), run = Obs.Record.capture (fun () -> ()) in
  Alcotest.(check int) "no spans leak in" 0 (List.length run.spans);
  let m =
    List.find
      (fun m -> m.Obs.Record.m_component = "test" && m.Obs.Record.m_name = "events")
      run.metrics
  in
  Alcotest.(check int) "pre-capture incr dropped" 0 m.Obs.Record.samples

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_metric_snapshot () =
  let (), run =
    Obs.Record.capture (fun () ->
        Obs.Metrics.incr test_counter;
        Obs.Metrics.incr ~by:4 test_counter;
        Obs.Metrics.set test_gauge 7;
        Obs.Metrics.set test_gauge 3)
  in
  let find name =
    List.find
      (fun m -> m.Obs.Record.m_component = "test" && m.Obs.Record.m_name = name)
      run.Obs.Record.metrics
  in
  let c = find "events" and g = find "level" in
  Alcotest.(check (float 0.)) "counter accumulates" 5.0 c.total;
  Alcotest.(check int) "counter samples" 2 c.samples;
  Alcotest.(check (float 0.)) "gauge is last-value" 3.0 g.total;
  Alcotest.(check (float 0.)) "gauge max retained" 7.0 g.vmax;
  (* The registry lists every registered metric, touched or not, in a
     stable (component, name) order. *)
  let names =
    List.map (fun m -> (m.Obs.Record.m_component, m.Obs.Record.m_name)) run.metrics
  in
  Alcotest.(check bool) "snapshot is sorted" true (List.sort compare names = names)

(* ------------------------------------------------------------------ *)
(* Determinism, export, tiling *)

let observed_checkpoint () =
  let cluster = build () in
  Obs.Record.capture (fun () ->
      Cluster.run cluster (fun () ->
          Obs.Record.label_track cluster.Cluster.engine "e2e";
          let inst =
            Approach.deploy cluster Approach.Blobcr
              ~node:(Cluster.node cluster 0) ~id:"vm0"
          in
          let bench = Synthetic.start inst ~buffer_bytes:(4 * mib) in
          let t0 = Cluster.now cluster in
          let _ =
            Protocol.global_checkpoint_exn cluster ~instances:[ inst ]
              ~dump:(fun _ -> Synthetic.dump_app bench)
          in
          (t0, Cluster.now cluster)))

let test_snapshot_determinism () =
  let _, run1 = observed_checkpoint () in
  let _, run2 = observed_checkpoint () in
  Alcotest.(check string) "metric tables byte-identical"
    (Obs.Export.metrics_table run1)
    (Obs.Export.metrics_table run2);
  Alcotest.(check string) "timelines byte-identical"
    (Obs.Export.chrome_trace run1)
    (Obs.Export.chrome_trace run2)

let test_chrome_trace_well_formed () =
  let _, run = observed_checkpoint () in
  let json = Obs.Export.chrome_trace run in
  (match Obs.Export.validate_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid timeline JSON: %s" e);
  Alcotest.(check bool) "rejects malformed input" true
    (Result.is_error (Obs.Export.validate_json "{\"traceEvents\": ["))

let test_phases_tile_checkpoint () =
  let (t0, t1), run = observed_checkpoint () in
  match Obs.Export.breakdown run ~root:"ckpt" with
  | [ b ] ->
      let root = b.Obs.Export.b_root in
      Alcotest.(check (float 1e-9)) "root span covers the measured delta"
        (t1 -. t0) root.Obs.Record.duration;
      let gap = Float.abs b.b_residual in
      if gap > 0.01 *. root.duration then
        Alcotest.failf "leaf phases sum to %.6fs of a %.6fs checkpoint (%.1f%%)"
          b.b_leaf_total root.duration
          (100. *. b.b_leaf_total /. root.duration);
      Alcotest.(check bool) "several distinct phases" true
        (List.length b.b_phases >= 4)
  | bs -> Alcotest.failf "expected one ckpt track, got %d" (List.length bs)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting, timing and attribution" `Quick test_span_nesting;
          Alcotest.test_case "no collector means no-op" `Quick test_no_collector_is_noop;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry snapshot semantics" `Quick test_metric_snapshot ] );
      ( "export",
        [
          Alcotest.test_case "snapshots deterministic across seeded runs" `Quick
            test_snapshot_determinism;
          Alcotest.test_case "chrome trace JSON well-formed" `Quick
            test_chrome_trace_well_formed;
          Alcotest.test_case "leaf phases tile the checkpoint span" `Quick
            test_phases_tile_checkpoint;
        ] );
    ]
