(* Tests for snapshot-chain retention and compaction: retention-policy
   edge cases, the compactor's journaled crash-safe transaction (typed
   refusals, all three crash points, transient-read retries, the deferred
   sweep, racing clones), the chaos acceptance surface, and the qcow2
   delta-chain baseline (incremental export + chain collapse). *)

open Simcore
open Netsim
open Storage
open Blobseer

(* Run every engine with teardown invariant audits armed (BLOBCR_AUDIT=1
   in test/dune enables them; linking the auditor installs it). *)
let () = Analysis.Invariants.install ()

(* ------------------------------------------------------------------ *)
(* Retention policy edges (pure planning, no engine) *)

let check_plan name (plan : Retention.plan) ~keep ~retire =
  Alcotest.(check (list int)) (name ^ " keep") keep plan.Retention.keep;
  Alcotest.(check (list int)) (name ^ " retire") retire plan.Retention.retire

let test_keep_last_edges () =
  let versions = [ 0; 1; 2; 3; 4; 5 ] in
  (* keep_last_0 and keep_last_1 both clamp to keeping only the tip. *)
  check_plan "keep_last_0"
    (Retention.plan (Retention.Keep_last 0) ~versions ~latest:5 ~pins:[])
    ~keep:[ 5 ] ~retire:[ 0; 1; 2; 3; 4 ];
  check_plan "keep_last_1"
    (Retention.plan (Retention.Keep_last 1) ~versions ~latest:5 ~pins:[])
    ~keep:[ 5 ] ~retire:[ 0; 1; 2; 3; 4 ];
  (* A keep budget larger than the chain keeps everything. *)
  check_plan "keep_last_9"
    (Retention.plan (Retention.Keep_last 9) ~versions ~latest:5 ~pins:[])
    ~keep:versions ~retire:[];
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Retention.plan: negative keep_last") (fun () ->
      ignore (Retention.plan (Retention.Keep_last (-1)) ~versions ~latest:5 ~pins:[]))

let test_thinning_short_chain () =
  (* A chain shorter than the base is kept whole... *)
  check_plan "short chain"
    (Retention.plan (Retention.Thin_exponential { base = 4 }) ~versions:[ 0; 1; 2 ]
       ~latest:2 ~pins:[])
    ~keep:[ 0; 1; 2 ] ~retire:[];
  (* ...and a single-version chain is untouchable under any policy. *)
  check_plan "single version"
    (Retention.plan (Retention.Thin_exponential { base = 2 }) ~versions:[ 0 ] ~latest:0
       ~pins:[])
    ~keep:[ 0 ] ~retire:[]

let test_pins_force_keep () =
  let plan =
    Retention.plan (Retention.Keep_last 1) ~versions:[ 0; 1; 2; 3 ] ~latest:3
      ~pins:[ (1, "rollback") ]
  in
  Alcotest.(check (list int)) "pinned version survives" [ 1; 3 ] plan.Retention.keep;
  Alcotest.(check (list int)) "others retire" [ 0; 2 ] plan.Retention.retire;
  Alcotest.(check (list (pair int string))) "pin attributed" [ (1, "rollback") ]
    plan.Retention.pinned_kept

(* ------------------------------------------------------------------ *)
(* Compactor rig *)

type rig = {
  engine : Engine.t;
  service : Client.t;
  client_host : Net.host;
  disks : Disk.t list;
}

let make_rig ?(providers = 4) ?(stripe = 100) () =
  let engine = Engine.create () in
  let net = Net.create engine { Net.default_config with latency = 1e-4 } in
  let vm_host = Net.add_host net ~name:"vmanager" in
  let pm_host = Net.add_host net ~name:"pmanager" in
  let md_hosts = [ Net.add_host net ~name:"meta0" ] in
  let data =
    List.init providers (fun i ->
        let host = Net.add_host net ~name:(Fmt.str "node%d" i) in
        let disk = Disk.create engine ~name:(Fmt.str "disk%d" i) () in
        (host, disk))
  in
  let client_host = Net.add_host net ~name:"client" in
  let params = { Types.default_params with stripe_size = stripe; replication = 1 } in
  let service =
    Client.deploy engine net ~params ~version_manager_host:vm_host
      ~provider_manager_host:pm_host ~metadata_hosts:md_hosts ~data_providers:data ()
  in
  { engine; service; client_host; disks = List.map snd data }

let run_rig rig f =
  let result = ref None in
  let _ = Engine.Fiber.spawn rig.engine ~name:"test-main" (fun () -> result := Some (f ())) in
  Engine.run rig.engine;
  Option.get !result

(* 300-byte payload of three distinct 100-byte chunks, unique per tag. *)
let content tag = String.concat "" (List.init 3 (fun i -> String.make 100 (Char.chr (tag + i))))

let make_compactor ?(deep = false) rig ~keep =
  Compactor.create rig.service ~home:rig.client_host
    ~config:
      { Compactor.default_config with policy = Retention.Keep_last keep; deep_verify = deep }
    ()

(* A blob with [writes] full-image rewrites of pairwise distinct content:
   versions 1..writes, each owning its own three chunks. *)
let seeded_blob rig ~writes =
  let blob = Client.create_blob rig.service ~from:rig.client_host ~capacity:300 in
  for v = 1 to writes do
    ignore
      (Client.write blob ~from:rig.client_host ~offset:0
         (Payload.of_string (content (Char.code 'a' + (4 * v)))))
  done;
  blob

let read_str blob ~from ~version =
  Payload.to_string (Client.read blob ~from ~version ~offset:0 ~len:300)

let test_compaction_end_to_end () =
  let rig = make_rig () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:4 in
      let c = make_compactor rig ~keep:2 in
      let repo = Client.repository_bytes rig.service in
      Compactor.scan c;
      Alcotest.(check (list int)) "live after scan" [ 3; 4 ] (Client.versions blob);
      Alcotest.(check (list int)) "retired recorded" [ 0; 1; 2 ]
        (Version_manager.retired_versions
           (Client.version_manager rig.service)
           ~blob:(Client.blob_id blob));
      (* Reclamation is deferred by one pass: nothing deleted yet. *)
      Alcotest.(check (list (pair int int))) "no chunks deleted yet" []
        (Compactor.reclaimed_chunks c);
      Alcotest.(check bool) "sweep queued" true (Compactor.pending_reclaim c > 0);
      Alcotest.(check int) "repository not yet shrunk" repo
        (Client.repository_bytes rig.service);
      Compactor.scan c;
      let s = Compactor.stats c in
      Alcotest.(check int) "six chunks reclaimed" 6 s.Compactor.chunks_reclaimed;
      Alcotest.(check int) "six hundred bytes reclaimed" 600 s.Compactor.bytes_reclaimed;
      Alcotest.(check int) "repository shrunk" (repo - 600)
        (Client.repository_bytes rig.service);
      (* Surviving versions stay byte-identical; retired reads are gone. *)
      Alcotest.(check string) "latest intact" (content (Char.code 'a' + 16))
        (read_str blob ~from ~version:4);
      Alcotest.(check string) "boundary intact" (content (Char.code 'a' + 12))
        (read_str blob ~from ~version:3);
      Alcotest.check_raises "retired version unreadable" Not_found (fun () ->
          ignore (read_str blob ~from ~version:2));
      Alcotest.(check int) "journal quiescent" 0 (Compactor.journal_pending c))

let test_retire_while_pinned_refuses () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:3 in
      let c = make_compactor rig ~keep:1 in
      Compactor.add_pin_source c ~name:"rollback" (fun () -> [ (Client.blob_id blob, 1) ]);
      Compactor.scan c;
      Alcotest.(check (list int)) "pinned version survives" [ 1; 3 ] (Client.versions blob);
      let refusal =
        match Compactor.refusals c with
        | [ r ] -> r
        | rs -> Alcotest.failf "expected one refusal, got %d" (List.length rs)
      in
      Alcotest.(check int) "refused blob" (Client.blob_id blob) refusal.Compactor.rblob;
      Alcotest.(check int) "refused version" 1 refusal.Compactor.rversion;
      Alcotest.(check string) "refusing source" "rollback" refusal.Compactor.rsource;
      (* Unpin: the next pass retires it. *)
      ())

let test_merkle_flatten_skips_reads () =
  (* The default flatten verifies the boundary version with one
     subtree-digest compare plus provider-local replica checks — no remote
     verify-reads of cold data; [deep_verify] restores the full-read
     behavior for drills that need the data path exercised. *)
  let flatten_stats deep =
    let rig = make_rig () in
    run_rig rig (fun () ->
        let blob = seeded_blob rig ~writes:4 in
        let c = make_compactor ~deep rig ~keep:2 in
        Compactor.scan c;
        let s = Compactor.stats c in
        (blob, c, s))
  in
  let _, c, s = flatten_stats false in
  Alcotest.(check bool) "cold chunks verified" true (s.Compactor.chunks_verified > 0);
  Alcotest.(check int) "no remote verify-reads" 0 s.Compactor.flatten_bytes_read;
  Alcotest.(check bool) "verified provider-locally" true
    (s.Compactor.flatten_bytes_local > 0);
  Alcotest.(check bool) "boundary root compare clean" true
    (s.Compactor.merkle_clean_bounds > 0);
  (match Compactor.boundary_roots c with
  | [] -> Alcotest.fail "no boundary root recorded"
  | (blob_id, version, root) :: _ ->
      Alcotest.(check bool) "root recorded for boundary" true
        (blob_id >= 0 && version > 0 && root <> 0L));
  let _, _, deep = flatten_stats true in
  Alcotest.(check bool) "deep_verify reads cold data" true
    (deep.Compactor.flatten_bytes_read > 0);
  Alcotest.(check int) "deep_verify skips the merkle compare" 0
    deep.Compactor.merkle_clean_bounds

let expect_crash name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Service_crashed" name
  | exception Types.Service_crashed _ -> ()

let test_crash_before_flatten_rolls_back () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:4 in
      let c = make_compactor rig ~keep:2 in
      Compactor.arm_crash c Compactor.Before_flatten;
      expect_crash "before-flatten" (fun () -> Compactor.scan c);
      Alcotest.(check bool) "down" false (Compactor.is_alive c);
      Alcotest.(check int) "intent pending" 1 (Compactor.journal_pending c);
      Compactor.restart c;
      let s = Compactor.stats c in
      Alcotest.(check int) "rolled back" 1 s.Compactor.rolled_back;
      Alcotest.(check int) "nothing rolled forward" 0 s.Compactor.rolled_forward;
      (* Nothing was retired: the old state is intact and retryable. *)
      Alcotest.(check (list int)) "all versions live" [ 0; 1; 2; 3; 4 ]
        (Client.versions blob);
      Compactor.scan c;
      Alcotest.(check (list int)) "retry compacts" [ 3; 4 ] (Client.versions blob))

let crash_forward_case point =
  let rig = make_rig () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:4 in
      let c = make_compactor rig ~keep:2 in
      Compactor.arm_crash c point;
      expect_crash "mid-transaction" (fun () -> Compactor.scan c);
      Compactor.restart c;
      let s = Compactor.stats c in
      Alcotest.(check int) "rolled forward" 1 s.Compactor.rolled_forward;
      (* The committed outcome was reached: retires completed, no live
         version lost, survivors byte-identical. *)
      Alcotest.(check (list int)) "keep set live" [ 3; 4 ] (Client.versions blob);
      Alcotest.(check string) "latest intact" (content (Char.code 'a' + 16))
        (read_str blob ~from ~version:4);
      for _ = 1 to 2 do
        Compactor.scan c
      done;
      Alcotest.(check int) "chunks reclaimed after settle" 6
        (Compactor.stats c).Compactor.chunks_reclaimed;
      Alcotest.(check int) "journal quiescent" 0 (Compactor.journal_pending c);
      Alcotest.(check (list string)) "engine audits clean" []
        (List.map
           (fun v -> Fmt.str "%a" Analysis.Invariants.pp_violation v)
           (Analysis.Invariants.audit_engine rig.engine)))

let test_crash_mid_retire_rolls_forward () = crash_forward_case Compactor.Mid_retire
let test_crash_after_retire_rolls_forward () = crash_forward_case Compactor.After_retire

let test_transient_reads_absorbed () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:4 in
      let c = make_compactor ~deep:true rig ~keep:2 in
      (* One transient per provider disk: the provider-side disk retries
         absorb it and the pass completes without aborting anything. *)
      List.iter (fun disk -> Disk.inject_transient disk ~ops:1) rig.disks;
      Compactor.scan c;
      let s = Compactor.stats c in
      Alcotest.(check int) "no aborted transactions" 0 s.Compactor.flatten_failures;
      Alcotest.(check (list int)) "compaction completed" [ 3; 4 ] (Client.versions blob))

let test_transient_exhaustion_aborts_then_retries () =
  let rig = make_rig () in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:4 in
      let c = make_compactor ~deep:true rig ~keep:2 in
      (* 16 armed transients exhaust one chunk read's full retry budget:
         4 client failover rounds x 4 provider disk attempts. The flatten
         verify-read fails, the transaction aborts (intent rolled back,
         nothing retired) and later passes drain the faults and compact. *)
      List.iter (fun disk -> Disk.inject_transient disk ~ops:16) rig.disks;
      Compactor.scan c;
      Alcotest.(check bool) "transaction aborted" true
        ((Compactor.stats c).Compactor.flatten_failures > 0);
      Alcotest.(check int) "aborted intent resolved" 0 (Compactor.journal_pending c);
      Alcotest.(check (list int)) "nothing retired" [ 0; 1; 2; 3; 4 ]
        (Client.versions blob);
      let rec drain n =
        if Client.versions blob <> [ 3; 4 ] then begin
          if n > 8 then Alcotest.fail "compaction never recovered from transients";
          Compactor.scan c;
          drain (n + 1)
        end
      in
      drain 0;
      for _ = 1 to 2 do
        Compactor.scan c
      done;
      Alcotest.(check int) "chunks reclaimed after recovery" 6
        (Compactor.stats c).Compactor.chunks_reclaimed;
      (* Disks holding only tip chunks still carry armed transients the
         flatten never touched; each failed attempt drains some. *)
      let rec read_eventually n =
        match read_str blob ~from:rig.client_host ~version:4 with
        | s -> s
        | exception Types.Provider_down _ when n < 8 -> read_eventually (n + 1)
      in
      Alcotest.(check string) "latest intact" (content (Char.code 'a' + 16))
        (read_eventually 0))

let test_retention_races_clone () =
  let rig = make_rig () in
  let from = rig.client_host in
  run_rig rig (fun () ->
      let blob = seeded_blob rig ~writes:4 in
      let c = make_compactor ~deep:true rig ~keep:2 in
      let cloned = ref None in
      (* A concurrent CLONE of a version the policy retires, landing while
         the pass is mid-flight (the flatten reads pass simulated time). *)
      let _ =
        Engine.Fiber.spawn rig.engine ~name:"cloner" (fun () ->
            Engine.sleep rig.engine 5e-4;
            match Client.clone blob ~from ~version:1 with
            | b -> cloned := Some (Ok b)
            | exception Not_found -> cloned := Some (Error "already retired"))
      in
      Compactor.scan c;
      Compactor.scan c;
      Compactor.scan c;
      (match !cloned with
      | Some (Ok clone) ->
          (* The clone shares the retired version's chunks: the deferred
             sweep's liveness recheck must have spared them. *)
          Alcotest.(check string) "clone readable after sweeps"
            (content (Char.code 'a' + 4))
            (read_str clone ~from ~version:0)
      | Some (Error _) -> ()
      | None -> Alcotest.fail "cloner never ran");
      Alcotest.(check (list string)) "engine audits clean" []
        (List.map
           (fun v -> Fmt.str "%a" Analysis.Invariants.pp_violation v)
           (Analysis.Invariants.audit_engine rig.engine)))

(* ------------------------------------------------------------------ *)
(* Chaos acceptance: crashes and transients must not change the settled
   outcome — the restored image is byte-identical to a fault-free run and
   the live/retired sets are the retention policy's fixed point. *)

let test_chaos_settles_byte_identical () =
  let scale = Experiments.Scale.quick in
  let depth = 4 in
  let policy = Blobseer.Retention.Keep_last scale.Experiments.Scale.chains_keep_last in
  let script _cluster _compactor =
    [
      { Faults.at = 0.002; action = Faults.Crash_compaction { point = 0 } };
      { Faults.at = 0.004; action = Faults.Transient_disk { target = 0; ops = 2 } };
      { Faults.at = 0.006; action = Faults.Crash_compaction { point = 1 } };
      { Faults.at = 0.008; action = Faults.Crash_service 1 };
      { Faults.at = 0.010; action = Faults.Crash_compaction { point = 2 } };
    ]
  in
  let chaos = Experiments.Chains.chaos_run scale ~script ~policy ~depth () in
  let clean = Experiments.Chains.bs_run scale ~policy ~depth () in
  let co = chaos.Experiments.Chains.c_outcome in
  Alcotest.(check bool) "faults were injected" true
    (chaos.Experiments.Chains.c_injected <> []);
  Alcotest.(check string) "restored image byte-identical"
    (Fmt.str "%Lx" clean.Experiments.Chains.restart_digest)
    (Fmt.str "%Lx" co.Experiments.Chains.restart_digest);
  Alcotest.(check (list int)) "live set is the retention fixed point"
    clean.Experiments.Chains.live_versions co.Experiments.Chains.live_versions;
  Alcotest.(check (list int)) "retired set matches"
    clean.Experiments.Chains.retired_versions co.Experiments.Chains.retired_versions;
  Alcotest.(check (list string)) "invariants hold under chaos" []
    (List.map
       (fun v -> Fmt.str "%a" Analysis.Invariants.pp_violation v)
       (Analysis.Invariants.audit_engine co.Experiments.Chains.engine))

let test_fault_profile_targets_services () =
  let rng = Rng.create 7 in
  let script =
    Faults.of_profile ~rng ~mtbf:1.0 ~horizon:50.0 ~hosts:4 ~providers:4
      ~weights:(0, 0, 0, 0) ~service_weight:1 ()
  in
  Alcotest.(check bool) "profile non-empty" true (script <> []);
  List.iter
    (fun (e : Faults.event) ->
      match e.Faults.action with
      | Faults.Crash_service i ->
          Alcotest.(check bool) "service index in range" true (i >= 0 && i < 3)
      | a -> Alcotest.failf "unexpected action %a" Faults.pp_action a)
    script

(* ------------------------------------------------------------------ *)
(* qcow2 delta chains *)

type qrig = {
  qengine : Engine.t;
  fs : Pvfs.t;
  qnodes : (Net.host * Disk.t) array;
}

let make_qrig ?(nodes = 3) () =
  let qengine = Engine.create () in
  let net = Net.create qengine { Net.default_config with latency = 1e-4 } in
  let md_host = Net.add_host net ~name:"pvfs-md" in
  let qnodes =
    Array.init nodes (fun i ->
        ( Net.add_host net ~name:(Fmt.str "node%d" i),
          Disk.create qengine ~name:(Fmt.str "nodedisk%d" i) () ))
  in
  let fs =
    Pvfs.deploy qengine net
      ~params:{ Pvfs.default_params with stripe_size = 1024 }
      ~metadata_host:md_host ~io_servers:(Array.to_list qnodes) ()
  in
  { qengine; fs; qnodes }

let run_qrig rig f =
  let result = ref None in
  let _ =
    Engine.Fiber.spawn rig.qengine ~name:"test-main" (fun () -> result := Some (f ()))
  in
  Engine.run rig.qengine;
  Option.get !result

let qimage rig ~node ~name ~backing =
  let host, disk = rig.qnodes.(node) in
  Vdisk.Qcow2.create rig.qengine ~host ~local_disk:disk ~cluster_size:1024
    ~capacity:(8 * 1024) ~backing ~name ()

let test_qcow2_incremental_export () =
  let rig = make_qrig () in
  run_qrig rig (fun () ->
      let host0 = fst rig.qnodes.(0) in
      let img = qimage rig ~node:0 ~name:"base" ~backing:Vdisk.Qcow2.No_backing in
      Vdisk.Qcow2.write img ~offset:0 (Payload.pattern ~seed:1L (8 * 1024));
      let r0 = Vdisk.Qcow2.export img rig.fs ~from:host0 ~path:"/l0" in
      let full = Vdisk.Qcow2.remote_file_size r0 in
      Alcotest.(check bool) "full export is not a delta" false
        (Vdisk.Qcow2.remote_is_delta r0);
      (* Dirty two clusters: the delta ships exactly those. *)
      Vdisk.Qcow2.write img ~offset:0 (Payload.pattern ~seed:2L 2048);
      let r1 = Vdisk.Qcow2.export_incremental img rig.fs ~from:host0 ~path:"/l1" ~base:r0 in
      Alcotest.(check bool) "delta flagged" true (Vdisk.Qcow2.remote_is_delta r1);
      Alcotest.(check int) "chain depth 2" 2 (Vdisk.Qcow2.remote_chain_depth r1);
      Alcotest.(check bool) "delta smaller than full" true
        (Vdisk.Qcow2.remote_file_size r1 < full);
      (* A no-change export ships tables only. *)
      let r2 = Vdisk.Qcow2.export_incremental img rig.fs ~from:host0 ~path:"/l2" ~base:r1 in
      Alcotest.(check bool) "empty delta smaller still" true
        (Vdisk.Qcow2.remote_file_size r2 < Vdisk.Qcow2.remote_file_size r1);
      (* Restart through the chain is byte-identical to the source. *)
      let rimg = qimage rig ~node:1 ~name:"restart" ~backing:(Vdisk.Qcow2.Qcow2_remote r2) in
      Alcotest.(check bool) "chain readback identical" true
        (Payload.equal
           (Vdisk.Qcow2.read img ~offset:0 ~len:(8 * 1024))
           (Vdisk.Qcow2.read rimg ~offset:0 ~len:(8 * 1024))))

let test_qcow2_collapse_chain () =
  let rig = make_qrig () in
  run_qrig rig (fun () ->
      let host0 = fst rig.qnodes.(0) in
      let img = qimage rig ~node:0 ~name:"base" ~backing:Vdisk.Qcow2.No_backing in
      Vdisk.Qcow2.write img ~offset:0 (Payload.pattern ~seed:1L (8 * 1024));
      let r0 = Vdisk.Qcow2.export img rig.fs ~from:host0 ~path:"/l0" in
      Vdisk.Qcow2.write img ~offset:0 (Payload.pattern ~seed:2L 2048);
      let r1 = Vdisk.Qcow2.export_incremental img rig.fs ~from:host0 ~path:"/l1" ~base:r0 in
      Vdisk.Qcow2.write img ~offset:2048 (Payload.pattern ~seed:3L 2048);
      let r2 = Vdisk.Qcow2.export_incremental img rig.fs ~from:host0 ~path:"/l2" ~base:r1 in
      Alcotest.(check int) "chain depth 3" 3 (Vdisk.Qcow2.remote_chain_depth r2);
      let collapsed, stats = Vdisk.Qcow2.collapse_chain r2 ~from:host0 ~path:"/c" in
      Alcotest.(check int) "three levels merged" 3 stats.Vdisk.Qcow2.levels_collapsed;
      Alcotest.(check int) "eight unique clusters" 8 stats.Vdisk.Qcow2.clusters_unique;
      Alcotest.(check bool) "retired bytes reclaimed" true
        (stats.Vdisk.Qcow2.bytes_reclaimed > stats.Vdisk.Qcow2.bytes_shipped);
      Alcotest.(check int) "standalone result" 1
        (Vdisk.Qcow2.remote_chain_depth collapsed);
      List.iter
        (fun path ->
          Alcotest.(check bool) (path ^ " deleted") false (Pvfs.exists rig.fs ~path))
        [ "/l0"; "/l1"; "/l2" ];
      let rimg =
        qimage rig ~node:1 ~name:"restart" ~backing:(Vdisk.Qcow2.Qcow2_remote collapsed)
      in
      Alcotest.(check bool) "collapsed readback identical" true
        (Payload.equal
           (Vdisk.Qcow2.read img ~offset:0 ~len:(8 * 1024))
           (Vdisk.Qcow2.read rimg ~offset:0 ~len:(8 * 1024))))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chains"
    [
      ( "retention",
        [
          Alcotest.test_case "keep_last edges" `Quick test_keep_last_edges;
          Alcotest.test_case "thinning short chain" `Quick test_thinning_short_chain;
          Alcotest.test_case "pins force keep" `Quick test_pins_force_keep;
        ] );
      ( "compactor",
        [
          Alcotest.test_case "end to end with deferred sweep" `Quick
            test_compaction_end_to_end;
          Alcotest.test_case "retire while pinned refuses" `Quick
            test_retire_while_pinned_refuses;
          Alcotest.test_case "merkle flatten skips remote reads" `Quick
            test_merkle_flatten_skips_reads;
          Alcotest.test_case "crash before flatten rolls back" `Quick
            test_crash_before_flatten_rolls_back;
          Alcotest.test_case "crash mid retire rolls forward" `Quick
            test_crash_mid_retire_rolls_forward;
          Alcotest.test_case "crash after retire rolls forward" `Quick
            test_crash_after_retire_rolls_forward;
          Alcotest.test_case "transient reads absorbed" `Quick
            test_transient_reads_absorbed;
          Alcotest.test_case "transient exhaustion aborts then retries" `Quick
            test_transient_exhaustion_aborts_then_retries;
          Alcotest.test_case "retention races clone" `Quick test_retention_races_clone;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "settles byte-identical" `Quick
            test_chaos_settles_byte_identical;
          Alcotest.test_case "fault profile targets services" `Quick
            test_fault_profile_targets_services;
        ] );
      ( "qcow2",
        [
          Alcotest.test_case "incremental export" `Quick test_qcow2_incremental_export;
          Alcotest.test_case "collapse chain" `Quick test_qcow2_collapse_chain;
        ] );
    ]
